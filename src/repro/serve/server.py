"""The ER service daemon: one worker pool, many concurrent jobs.

:class:`ERServer` is the paper's driver turned into a long-running
service.  It owns one :class:`~repro.serve.pool.SharedWorkerPool`
(startup paid once, healed on worker loss) and a TCP front end speaking
the protocol of :mod:`repro.serve.protocol`: any number of clients
connect, authenticate, and submit :class:`~repro.engine.backend.
PipelineRequest`\\ s; every submission becomes a server-side
:class:`~repro.engine.execution.PipelineExecution` on a
:class:`~repro.serve.pool.PooledBackend`, so all active jobs multiplex
their task units over the one pool with fair scheduling — and each
client still gets the full execution surface remotely: ordered events
(streamed matches included), progress, cooperative cancel, and the
final :class:`~repro.engine.result.PipelineResult`.

Failure semantics, by construction:

* **Bad token** — the connection is closed after the raw preamble
  comparison; nothing the peer sent is ever unpickled.
* **Client disconnect** — every job of *that* session is cancelled
  cooperatively; other sessions and their jobs are untouched.
* **Worker crash** — the pool requeues the lost worker's task and
  respawns a replacement within budget; served jobs simply keep
  running (the affected task re-runs, results stay byte-identical).
* **Shutdown** — new submissions are refused, active jobs drain for up
  to ``drain_timeout`` seconds, stragglers are cancelled, workers are
  shut down gracefully.

Every finished job (succeeded, failed or cancelled) appends one JSON
line to the workload log, when configured: request parameters,
per-stage wall-clock timings, and the comparison/match counters — the
service-side equivalent of the paper's per-experiment bookkeeping.
"""

from __future__ import annotations

import json
import secrets
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from ..engine.backend import DeltaSpec, PipelineRequest
from ..engine.execution import PipelineExecution
from ..mapreduce.events import ExecutionEvent
from ..mapreduce.transport import (
    Connection,
    Listener,
    TransportError,
)
from .pool import SharedWorkerPool
from .protocol import TOKEN_BYTES, encode_token, service_token, wire_event


@dataclass
class _ServedJob:
    """Server-side state of one submitted job.

    ``execution`` is ``None`` for the moment between registration and
    construction: the job is registered (atomically with the draining
    check) *before* the execution starts, so shutdown can never miss
    an accepted job — see :meth:`ERServer._handle_submit`.
    """

    job_id: int
    session: "_Session"
    request: PipelineRequest
    execution: PipelineExecution | None
    started_at: float
    #: stage name -> [first event monotonic, last event monotonic];
    #: written by the job's driver thread (event order), read by the
    #: waiter thread after completion.
    stage_times: dict[str, list[float]] = field(default_factory=dict)
    #: Set for ``submit-delta`` jobs: the server-resident corpus state
    #: this ingest runs against (and advances on success).
    state_name: str | None = None


class _Session:
    """One authenticated client connection."""

    def __init__(self, session_id: int, conn: Connection):
        self.session_id = session_id
        self.conn = conn
        self.jobs: dict[int, _ServedJob] = {}  # guarded-by: lock
        self.lock = threading.Lock()
        self.gone = False

    def send(self, message: tuple) -> bool:
        """Ship one message; on a dead peer, mark the session gone
        (senders race with the disconnect — losing is harmless)."""
        if self.gone:
            return False
        try:
            self.conn.send(message)
            return True
        except (TransportError, OSError):
            self.gone = True
            return False

    def cancel_jobs(self) -> None:
        with self.lock:
            jobs = list(self.jobs.values())
        for job in jobs:
            if job.execution is not None:
                job.execution.cancel()


class ERServer:
    """The persistent ER daemon (see the module docstring).

    Parameters
    ----------
    num_workers:
        Size of the shared worker pool.
    host / port:
        Front-end bind address (``port=0`` picks an ephemeral port;
        read :attr:`address` after :meth:`start`).
    token:
        Shared client-authentication secret.  Resolution order:
        explicit argument, the :data:`~repro.serve.protocol.
        ENV_SERVE_TOKEN` environment variable, else a random token is
        generated (read :attr:`token`; :attr:`token_generated` tells
        you the daemon made it up and clients must be handed it).
    task_timeout / max_task_retries / heartbeat_* / max_worker_respawns:
        Forwarded to the pool — identical semantics to the distributed
        backend, with ``max_worker_respawns`` defaulting to
        ``2 * num_workers`` (a service pool should heal).
    workload_log:
        Path of the JSONL workload log; ``None`` disables logging.
    state_root:
        Directory holding the server-resident corpus states, one
        subdirectory per state name; enables the ``submit-delta`` verb
        (incremental ingests against persisted state).  ``None``
        (the default) rejects delta submissions.
    drain_timeout:
        Seconds :meth:`shutdown` waits for active jobs before
        cancelling them (0 cancels immediately).
    client_timeout:
        Seconds a fresh connection gets to authenticate.
    """

    def __init__(
        self,
        *,
        num_workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        token: str | None = None,
        task_timeout: float | None = None,
        max_task_retries: int = 2,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float | None = 15.0,
        max_worker_respawns: int | None = None,
        workload_log: "str | Path | None" = None,
        state_root: "str | Path | None" = None,
        drain_timeout: float = 30.0,
        client_timeout: float = 30.0,
    ):
        resolved = service_token(token)
        self.token_generated = resolved is None
        #: The shared secret clients must present.
        self.token: str = (
            resolved if resolved is not None else secrets.token_hex(16)
        )
        self._token_raw = encode_token(self.token)
        self._pool = SharedWorkerPool(
            num_workers=num_workers,
            task_timeout=task_timeout,
            max_task_retries=max_task_retries,
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout,
            max_worker_respawns=max_worker_respawns,
        )
        self._host = host
        self._port = port
        self.workload_log = Path(workload_log) if workload_log else None
        self.state_root = Path(state_root) if state_root else None
        #: One lock per state name: ingests against the same state are
        #: strictly serialized (load -> run -> advance -> save is one
        #: critical section); different states ingest concurrently.
        self._state_locks: dict[str, threading.Lock] = {}  # guarded-by: _lock
        self.drain_timeout = drain_timeout
        self.client_timeout = client_timeout
        self._listener: Listener | None = None
        self._accept_thread: threading.Thread | None = None
        self._sessions: dict[int, _Session] = {}  # guarded-by: _lock
        self._jobs: dict[int, _ServedJob] = {}  # guarded-by: _lock
        self._lock = threading.Lock()
        self._session_ids = iter(range(1, 1 << 62))
        self._job_ids = iter(range(1, 1 << 62))
        self._draining = False  # guarded-by: _lock
        self._closed = False
        self._log_lock = threading.Lock()
        #: Connections refused for a bad token (observability/tests).
        self.auth_failures = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """Front-end ``(host, port)`` once :meth:`start` has run."""
        if self._listener is None:
            raise RuntimeError("server not started")
        return self._listener.address

    def start(self) -> "ERServer":
        """Bring the pool up and start accepting clients."""
        if self._accept_thread is not None:
            return self
        self._pool.start()
        try:
            self._listener = Listener(self._host, self._port)
        except BaseException:
            self._pool.close()
            raise
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def shutdown(self) -> None:
        """Drain and stop (idempotent).

        New submissions are refused immediately; running jobs get up to
        ``drain_timeout`` seconds to finish, then are cancelled; every
        session is told ``("shutting-down",)``; workers exit cleanly.
        """
        if self._closed:
            return
        self._closed = True
        # Setting the flag and snapshotting the registry both happen
        # under the lock _handle_submit registers under: any accepted
        # job is in the snapshot, any later submission is rejected.
        with self._lock:
            self._draining = True
            sessions = list(self._sessions.values())
            jobs = list(self._jobs.values())
        if self._listener is not None:
            self._listener.close()
        for session in sessions:
            session.send(("shutting-down",))
        deadline = time.monotonic() + max(0.0, self.drain_timeout)
        for job in jobs:
            execution = self._settled_execution(job)
            if execution is None:
                continue
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not execution.wait(timeout=remaining):
                execution.cancel()
        for job in jobs:
            if job.execution is not None:
                job.execution.wait(timeout=30)
        # The waiter threads ship each job's terminal message *before*
        # retiring it from the registry; only close the session
        # connections once the registry has drained, so clients see
        # done/cancelled rather than a dropped connection.
        retire_deadline = time.monotonic() + 10
        while time.monotonic() < retire_deadline:
            with self._lock:
                if not self._jobs:
                    break
            time.sleep(0.01)
        for session in sessions:
            session.conn.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=10)
            self._accept_thread = None
        self._pool.close()

    def __enter__(self) -> "ERServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- observability -------------------------------------------------------

    @property
    def active_jobs(self) -> int:
        with self._lock:
            return len(self._jobs)

    @property
    def active_sessions(self) -> int:
        with self._lock:
            return len(self._sessions)

    # -- accepting -----------------------------------------------------------

    def _accept_loop(self) -> None:
        if self._listener is None:
            raise RuntimeError("accept loop started before listen()")
        while not self._closed:
            try:
                conn = self._listener.accept()
            except (TransportError, OSError):
                if self._closed:
                    return
                continue
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="repro-serve-session",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: Connection) -> None:
        # Authentication first, on raw bytes: an unauthenticated peer
        # never gets a byte into pickle.loads.
        try:
            preamble = conn.recv_raw(TOKEN_BYTES, timeout=self.client_timeout)
        except (TransportError, OSError):
            conn.close()
            return
        if not secrets.compare_digest(preamble, self._token_raw):
            self.auth_failures += 1
            conn.close()
            return
        try:
            hello = conn.recv(timeout=self.client_timeout)
        except (TransportError, OSError):
            conn.close()
            return
        if not isinstance(hello, tuple) or not hello or hello[0] != "hello":
            conn.close()
            return
        session = _Session(next(self._session_ids), conn)
        with self._lock:
            if self._closed:
                conn.close()
                return
            self._sessions[session.session_id] = session
            draining = self._draining
        session.send((
            "welcome",
            {
                "session_id": session.session_id,
                "num_workers": self._pool.num_workers,
                "draining": draining,
            },
        ))
        try:
            self._session_loop(session)
        finally:
            session.gone = True
            # A vanished (or departing) client must not keep burning
            # pool time: cancel that session's jobs — and only those.
            session.cancel_jobs()
            with self._lock:
                self._sessions.pop(session.session_id, None)
            conn.close()

    def _session_loop(self, session: _Session) -> None:
        while True:
            try:
                message = session.conn.recv()
            except (TransportError, OSError):
                return  # client gone (or we are shutting down)
            if not isinstance(message, tuple) or not message:
                continue
            verb = message[0]
            if verb == "bye":
                return
            if verb == "submit" and len(message) == 3:
                self._handle_submit(session, message[1], message[2])
            elif verb == "submit-delta" and len(message) == 4:
                self._handle_submit_delta(
                    session, message[1], message[2], message[3]
                )
            elif verb == "cancel" and len(message) == 2:
                self._handle_cancel(session, message[1])

    # -- job handling --------------------------------------------------------

    @staticmethod
    def _settled_execution(
        job: _ServedJob, timeout: float = 5.0
    ) -> PipelineExecution | None:
        """The job's execution, waiting out the registration window."""
        deadline = time.monotonic() + timeout
        while job.execution is None and time.monotonic() < deadline:
            time.sleep(0.005)
        return job.execution

    def _handle_submit(
        self, session: _Session, ticket: Any, request: Any
    ) -> None:
        if not isinstance(request, PipelineRequest):
            session.send((
                "rejected", ticket,
                f"expected a PipelineRequest, got {type(request).__name__}",
            ))
            return
        from .pool import PooledBackend  # local: avoid cycle at import

        job_id = next(self._job_ids)
        job = _ServedJob(
            job_id=job_id,
            session=session,
            request=request,
            execution=None,
            started_at=time.monotonic(),
        )
        # The draining check and the registration are one critical
        # section, mirrored by shutdown(): either this job makes the
        # shutdown snapshot, or it is rejected here.
        with self._lock:
            if self._draining:
                session.send(("rejected", ticket, "server is shutting down"))
                return
            self._jobs[job_id] = job
        with session.lock:
            session.jobs[job_id] = job
        # Wire ordering: the client learns the job id from "accepted"
        # before the first "event" of that job can possibly arrive
        # (the execution starts running only on construction below).
        session.send(("accepted", ticket, job_id))

        def forward(event: ExecutionEvent) -> None:
            # Runs on the job's driver thread, in event order.
            times = job.stage_times.setdefault(
                event.stage, [time.monotonic(), 0.0]
            )
            times[1] = time.monotonic()
            session.send(("event", job_id, wire_event(event)))

        try:
            job.execution = PipelineExecution(
                PooledBackend(self._pool, job_name=f"job-{job_id}"),
                request,
                on_event=forward,
            )
        # Shipped, not swallowed: whatever submission raises becomes a
        # "failed" message the client re-raises.
        except BaseException as exc:  # repro-lint: disable=silent-except -- shipped to client
            with self._lock:
                self._jobs.pop(job_id, None)
            with session.lock:
                session.jobs.pop(job_id, None)
            from ..mapreduce.transport import shippable_exception

            session.send(("failed", job_id, shippable_exception(exc)))
            return
        threading.Thread(
            target=self._finish_job,
            args=(job,),
            name=f"repro-serve-job-{job_id}",
            daemon=True,
        ).start()

    def _handle_cancel(self, session: _Session, job_id: Any) -> None:
        with session.lock:
            job = session.jobs.get(job_id)
        # ``execution`` is still None in the registration window (and
        # while a delta job queues on its state lock); a cancel landing
        # there is simply too early and is dropped, like one landing
        # after completion.
        if job is not None and job.execution is not None:
            job.execution.cancel()

    # -- incremental ingests -------------------------------------------------

    def _state_lock(self, name: str) -> threading.Lock:
        with self._lock:
            return self._state_locks.setdefault(name, threading.Lock())

    @staticmethod
    def _valid_state_name(name: Any) -> bool:
        """One safe path component: letters, digits, ``-``, ``_``, ``.``
        (and not the directory dots) — state names come off the wire."""
        return (
            isinstance(name, str)
            and 0 < len(name) <= 200
            and name not in (".", "..")
            and all(ch.isalnum() or ch in "-_." for ch in name)
        )

    def _handle_submit_delta(
        self, session: _Session, ticket: Any, state_name: Any, request: Any
    ) -> None:
        """Accept one incremental ingest against a server-resident state.

        The client ships a *plain* request over the delta partitions;
        merging the persisted corpus in (as a
        :class:`~repro.engine.backend.DeltaSpec`) is the server's job,
        so clients never hold or transfer the accumulated state.
        Mirrors :meth:`_handle_submit`'s critical section; the work
        itself runs on a dedicated thread because ingests of the same
        state serialize on the state lock.
        """
        if self.state_root is None:
            session.send((
                "rejected", ticket,
                "this server keeps no corpus states "
                "(start it with --state-root)",
            ))
            return
        if not self._valid_state_name(state_name):
            session.send((
                "rejected", ticket,
                f"invalid state name {state_name!r} (one path component: "
                "letters, digits, '-', '_', '.')",
            ))
            return
        if not isinstance(request, PipelineRequest):
            session.send((
                "rejected", ticket,
                f"expected a PipelineRequest, got {type(request).__name__}",
            ))
            return
        if request.delta is not None or request.dual:
            session.send((
                "rejected", ticket,
                "a submit-delta request ships plain delta partitions; "
                "the server merges its persisted state itself",
            ))
            return
        job_id = next(self._job_ids)
        job = _ServedJob(
            job_id=job_id,
            session=session,
            request=request,
            execution=None,
            started_at=time.monotonic(),
            state_name=state_name,
        )
        with self._lock:
            if self._draining:
                session.send(("rejected", ticket, "server is shutting down"))
                return
            self._jobs[job_id] = job
        with session.lock:
            session.jobs[job_id] = job
        session.send(("accepted", ticket, job_id))
        threading.Thread(
            target=self._run_delta_job,
            args=(job,),
            name=f"repro-serve-delta-{job_id}",
            daemon=True,
        ).start()

    def _run_delta_job(self, job: _ServedJob) -> None:
        """One ingest, under its state's lock: load the persisted
        :class:`~repro.engine.incremental.CorpusState`, run the request
        as a delta against it (or as a plain full run when the state is
        still empty), advance and save atomically on success.  A failed
        or cancelled ingest leaves the persisted state untouched, so
        retrying the same batch converges."""
        from ..engine.incremental import CorpusState
        from ..engine.persistence import STATE_FILE, load_state, save_state
        from ..mapreduce.transport import shippable_exception
        from .pool import PooledBackend

        if self.state_root is None or job.state_name is None:
            raise RuntimeError(
                "delta job dispatched without a state root/state name"
            )
        state_dir = self.state_root / job.state_name

        def forward(event: ExecutionEvent) -> None:
            times = job.stage_times.setdefault(
                event.stage, [time.monotonic(), 0.0]
            )
            times[1] = time.monotonic()
            job.session.send(("event", job.job_id, wire_event(event)))

        terminal = "failed"
        try:
            with self._state_lock(job.state_name):
                if (state_dir / STATE_FILE).exists():
                    corpus = load_state(state_dir)
                else:
                    corpus = CorpusState.empty()
                request = job.request
                if corpus.partitions:
                    request = replace(
                        request,
                        delta=DeltaSpec(
                            old_partitions=corpus.partitions,
                            old_bdm=corpus.bdm,
                        ),
                    )
                job.execution = PipelineExecution(
                    PooledBackend(self._pool, job_name=f"job-{job.job_id}"),
                    request,
                    on_event=forward,
                )
                # Intentionally blocking while the state lock is held:
                # delta jobs against one state name are serialized, and
                # the pool keeps making progress on its own threads.
                job.execution.wait()  # repro-lint: disable=blocking-under-lock -- serializes per-state jobs
                terminal = job.execution.state
                if terminal == "succeeded":
                    result = job.execution.result()
                    advanced = corpus.advanced(
                        result, job.request.partitions, job.request.blocking
                    )
                    # The save happens before "done" goes out: a client
                    # that saw its ingest succeed can rely on the state
                    # having committed.
                    save_state(advanced, state_dir)
                    job.session.send(("done", job.job_id, result))
                elif terminal == "cancelled":
                    job.session.send(("cancelled", job.job_id))
                else:
                    try:
                        job.execution.result()
                    # Shipped, not swallowed: the client re-raises it.
                    except BaseException as exc:  # repro-lint: disable=silent-except -- shipped to client
                        job.session.send(
                            ("failed", job.job_id, shippable_exception(exc))
                        )
        # Shipped, not swallowed: state-load/save failures included.
        except BaseException as exc:  # repro-lint: disable=silent-except -- shipped to client
            terminal = "failed"
            job.session.send(("failed", job.job_id, shippable_exception(exc)))
        finally:
            with self._lock:
                self._jobs.pop(job.job_id, None)
            with job.session.lock:
                job.session.jobs.pop(job.job_id, None)
            self._log_job(job, terminal)

    def _finish_job(self, job: _ServedJob) -> None:
        """Wait one job out, report its terminal state, log it."""
        execution = job.execution
        execution.wait()
        state = execution.state
        if state == "succeeded":
            job.session.send(("done", job.job_id, execution.result()))
        elif state == "cancelled":
            job.session.send(("cancelled", job.job_id))
        else:
            try:
                execution.result()
            # Shipped, not swallowed: the client re-raises it.
            except BaseException as exc:  # repro-lint: disable=silent-except -- shipped to client
                from ..mapreduce.transport import shippable_exception

                job.session.send(("failed", job.job_id, shippable_exception(exc)))
        with self._lock:
            self._jobs.pop(job.job_id, None)
        with job.session.lock:
            job.session.jobs.pop(job.job_id, None)
        self._log_job(job, state)

    # -- workload log --------------------------------------------------------

    def _log_job(self, job: _ServedJob, state: str) -> None:
        if self.workload_log is None:
            return
        if job.execution is None:
            # A delta job can fail before its execution exists (e.g. a
            # corrupt persisted state); log the outcome without counters.
            progress = None
        else:
            progress = job.execution.progress()
        entry = {
            "ts": time.time(),
            "job_id": job.job_id,
            "session_id": job.session.session_id,
            "state": state,
            "wall_s": round(time.monotonic() - job.started_at, 6),
            "strategy": job.request.strategy.name,
            "params": {
                "num_partitions": len(job.request.partitions),
                "num_reduce_tasks": job.request.num_reduce_tasks,
                "dual": job.request.dual,
            },
            "stages": {
                stage: {
                    "wall_s": round(times[1] - times[0], 6),
                }
                for stage, times in job.stage_times.items()
            },
            "comparisons": progress.comparisons if progress else 0,
            "matches": progress.matches if progress else 0,
        }
        if job.state_name is not None:
            entry["corpus_state"] = job.state_name
        for stage in progress.stages if progress else ():
            entry["stages"].setdefault(stage.stage, {})
            entry["stages"][stage.stage].update(
                comparisons=stage.comparisons, matches=stage.matches
            )
        line = json.dumps(entry, sort_keys=True)
        with self._log_lock:
            with self.workload_log.open("a", encoding="utf-8") as handle:
                handle.write(line + "\n")

    def __repr__(self) -> str:
        where = self._listener.address if self._listener else "unbound"
        return (
            f"ERServer(address={where}, sessions={self.active_sessions}, "
            f"jobs={self.active_jobs})"
        )
