"""``python -m repro.serve`` — run the ER service daemon.

Starts an :class:`~repro.serve.server.ERServer`, prints the bound
address (and the token, when the daemon had to generate one — set
:data:`~repro.serve.protocol.ENV_SERVE_TOKEN` to control it yourself),
and serves until SIGTERM/SIGINT, then drains and exits 0.  The CLI
verb ``repro-er serve`` is the same thing with the rest of the CLI's
conveniences; this module exists so the daemon can be started without
the console script installed.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from .server import ERServer


def add_server_arguments(parser: argparse.ArgumentParser) -> None:
    """The daemon's flags (shared with the CLI's ``serve`` verb)."""
    parser.add_argument(
        "--workers", type=int, default=2,
        help="worker processes in the shared pool (default 2)",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="front-end bind address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=0,
        help="front-end port (default 0 = ephemeral; printed at startup)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-task timeout before a worker is presumed stuck",
    )
    parser.add_argument(
        "--max-task-retries", type=int, default=2, metavar="N",
        help="requeues per task after worker loss (default 2)",
    )
    parser.add_argument(
        "--max-worker-respawns", type=int, default=None, metavar="N",
        help="replacement workers over the daemon's lifetime "
             "(default 2x --workers)",
    )
    parser.add_argument(
        "--workload-log", default=None, metavar="PATH",
        help="append one JSON line per finished job to PATH",
    )
    parser.add_argument(
        "--state-root", default=None, metavar="DIR",
        help="directory of server-resident corpus states (one "
             "subdirectory per state name); enables submit-delta "
             "incremental ingests",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SECONDS",
        help="how long shutdown waits for active jobs (default 30)",
    )


def server_from_args(args: argparse.Namespace) -> ERServer:
    """Build the (unstarted) server an argument namespace describes."""
    return ERServer(
        num_workers=args.workers,
        host=args.host,
        port=args.port,
        task_timeout=args.task_timeout,
        max_task_retries=args.max_task_retries,
        max_worker_respawns=args.max_worker_respawns,
        workload_log=args.workload_log,
        state_root=args.state_root,
        drain_timeout=args.drain_timeout,
    )


def run_server(server: ERServer) -> int:
    """Start ``server`` and block until SIGTERM/SIGINT, then drain.

    Prints the bound address on startup (machine-readable first line)
    and the token when the daemon generated one.
    """
    server.start()
    host, port = server.address
    print(f"repro.serve listening on {host}:{port}", flush=True)
    if server.token_generated:
        # Printed exactly once so operators can hand it to clients;
        # set REPRO_SERVE_TOKEN on the daemon to avoid this entirely.
        print(f"repro.serve token {server.token}", flush=True)
    stop = threading.Event()

    def request_stop(signum, frame):
        stop.set()

    signal.signal(signal.SIGTERM, request_stop)
    signal.signal(signal.SIGINT, request_stop)
    stop.wait()
    print("repro.serve shutting down", flush=True)
    server.shutdown()
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Run the persistent ER service daemon.",
    )
    add_server_arguments(parser)
    args = parser.parse_args(argv)
    return run_server(server_from_args(args))


if __name__ == "__main__":
    sys.exit(main())
