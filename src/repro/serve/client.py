"""The client side of the ER service: remote submission, local handle.

:class:`ServeClient` speaks the protocol of :mod:`repro.serve.protocol`
to a running :class:`~repro.serve.server.ERServer`.  A submission ships
a locally-built :class:`~repro.engine.backend.PipelineRequest` (the
backend-independent half of ``ERPipeline.submit``) and returns a
:class:`RemoteExecution` — deliberately the same surface as the local
:class:`~repro.engine.execution.PipelineExecution`:

* ``iter_matches()`` streams matches as the server's reduce task units
  complete, in the same deterministic task-index order;
* ``progress()`` snapshots per-stage task completion — driven by the
  very same :class:`~repro.engine.execution.ExecutionStateMirror` the
  local handle uses, fed from the forwarded event stream, so local and
  remote progress reports are identical;
* ``cancel()`` requests cooperative cancellation on the server;
* ``result()`` blocks for the final :class:`~repro.engine.result.
  PipelineResult`, re-raising the server-side error for failed runs.

One client connection multiplexes any number of in-flight submissions;
a broken connection fails every outstanding handle with
:class:`ServeConnectionError` (the server, for its part, cancels the
disconnected session's jobs).
"""

from __future__ import annotations

import os
import threading
from dataclasses import replace
from typing import TYPE_CHECKING, Any, Callable, Iterator

from ..engine.execution import (
    CANCELLED,
    FAILED,
    RUNNING,
    SUCCEEDED,
    ExecutionProgress,
    ExecutionStateMirror,
)
from ..mapreduce.events import ExecutionEvent, PipelineCancelled
from ..mapreduce.transport import TransportError, connect
from .protocol import encode_token, service_token

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..engine.pipeline import ERPipeline
    from ..engine.result import PipelineResult
    from ..er.matching import MatchPair


class ServeConnectionError(ConnectionError):
    """The connection to the ER server was lost (or never worked) while
    submissions or handles were outstanding."""


class SubmissionRejected(RuntimeError):
    """The server refused a submission (draining, or a bad request)."""


class RemoteExecution:
    """A live handle on one job running on a remote ER server.

    Created by :meth:`ServeClient.submit`; not constructed directly.
    The surface mirrors :class:`~repro.engine.execution.
    PipelineExecution` (``state``/``done``/``wait``/``result``/
    ``iter_matches``/``progress``/``cancel``), with the run executing
    on the server's shared pool instead of a local backend.  Matches
    and progress derive from the forwarded event stream through the
    same mirror the local handle uses, so both report identically.
    """

    def __init__(self, client: "ServeClient", job_id: int):
        self._client = client
        self.job_id = job_id
        self._cond = threading.Condition()
        self._mirror = ExecutionStateMirror()  # guarded-by: _cond
        self._streamed: list["MatchPair"] = []  # guarded-by: _cond
        self._state = RUNNING  # guarded-by: _cond
        self._result: "PipelineResult | None" = None  # guarded-by: _cond
        self._error: BaseException | None = None  # guarded-by: _cond

    # -- fed by the client's receiver thread ---------------------------------

    def _on_event(self, event: ExecutionEvent) -> None:
        with self._cond:
            self._streamed.extend(self._mirror.update(event))
            self._cond.notify_all()

    def _finish(
        self,
        state: str,
        result: "PipelineResult | None" = None,
        error: BaseException | None = None,
    ) -> None:
        with self._cond:
            if self._state != RUNNING:
                return  # terminal already (e.g. done raced a drop)
            self._state = state
            self._result = result
            self._error = error
            self._cond.notify_all()

    # -- the PipelineExecution surface ---------------------------------------

    @property
    def state(self) -> str:
        """``"running"``, ``"succeeded"``, ``"failed"`` or ``"cancelled"``."""
        with self._cond:
            return self._state

    @property
    def done(self) -> bool:
        return self.state != RUNNING

    @property
    def cancelled(self) -> bool:
        return self.state == CANCELLED

    def cancel(self) -> bool:
        """Ask the server to cancel this job cooperatively.

        Returns ``False`` when the job is already finished; ``True``
        means the request was sent (a cancel can still lose the race
        against completion, exactly as with the local handle).
        """
        with self._cond:
            if self._state != RUNNING:
                return False
        self._client._send_cancel(self.job_id)
        return True

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job finishes; ``False`` on timeout."""
        with self._cond:
            return self._cond.wait_for(lambda: self._state != RUNNING, timeout)

    def result(self, timeout: float | None = None) -> "PipelineResult":
        """The finished job's result, exactly as the server computed it.

        Re-raises the server-side error for failed jobs,
        :class:`~repro.mapreduce.events.PipelineCancelled` for
        cancelled ones, and :class:`ServeConnectionError` when the
        connection died mid-run.
        """
        if not self.wait(timeout):
            raise TimeoutError(
                f"remote execution still running after {timeout} seconds"
            )
        with self._cond:
            if self._error is not None:
                raise self._error
            if self._result is None:
                raise RuntimeError(
                    "remote execution finished with neither result nor error"
                )
            return self._result

    def iter_matches(self) -> Iterator["MatchPair"]:
        """Stream matches as they arrive from the server.

        Same contract as the local handle: every match exactly once, in
        deterministic reduce-task-index order; replays from the start
        on repeated calls; ends by raising the job's error when it
        failed or was cancelled.
        """
        index = 0
        while True:
            with self._cond:
                self._cond.wait_for(
                    lambda: len(self._streamed) > index
                    or self._state != RUNNING
                )
                batch = self._streamed[index:]
                index += len(batch)
                drained = self._state != RUNNING and index == len(self._streamed)
                error = self._error
            yield from batch
            if drained:
                if error is not None:
                    raise error
                return

    def progress(self) -> ExecutionProgress:
        """A point-in-time snapshot of task completion per stage."""
        with self._cond:
            return self._mirror.progress(self._state)

    def __repr__(self) -> str:
        return f"RemoteExecution(job_id={self.job_id}, state={self.state!r})"


class _PendingSubmit:
    """A submit awaiting its accepted/rejected reply."""

    __slots__ = ("event", "execution", "rejection")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.execution: RemoteExecution | None = None
        self.rejection: str | None = None


class ServeClient:
    """A connection to a running ER server.

    Parameters
    ----------
    host / port:
        The server's front-end address.
    token:
        Shared service token; defaults to the
        :data:`~repro.serve.protocol.ENV_SERVE_TOKEN` environment
        variable.  Without one the client refuses to connect (the
        server would drop us anyway).
    timeout:
        Seconds to wait for the connection and the welcome.
    on_event:
        Optional callback receiving every forwarded
        :class:`~repro.mapreduce.events.ExecutionEvent` of every job
        submitted through this client (called on the receiver thread).

    Use as a context manager, or call :meth:`close`; closing ends the
    session cleanly (the server cancels any jobs still running).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        token: str | None = None,
        timeout: float = 30.0,
        on_event: Callable[[ExecutionEvent], None] | None = None,
    ):
        resolved = service_token(token)
        if resolved is None:
            raise ValueError(
                "no service token: pass token= or set the "
                "REPRO_SERVE_TOKEN environment variable"
            )
        self._on_event = on_event
        self._conn = connect(host, port, timeout=timeout)
        self._lock = threading.Lock()
        self._jobs: dict[int, RemoteExecution] = {}  # guarded-by: _lock
        self._pending: dict[int, _PendingSubmit] = {}  # guarded-by: _lock
        self._tickets = iter(range(1, 1 << 62))
        self._closed = False
        self.server_draining = False
        try:
            self._conn.send_bytes(encode_token(resolved))
            self._conn.send(("hello", os.getpid()))
            welcome = self._conn.recv(timeout=timeout)
        except (TransportError, OSError) as exc:
            self._conn.close()
            raise ServeConnectionError(
                f"handshake with {host}:{port} failed (bad token?): {exc}"
            ) from exc
        if (
            not isinstance(welcome, tuple)
            or len(welcome) != 2
            or welcome[0] != "welcome"
        ):
            self._conn.close()
            raise ServeConnectionError(
                f"unexpected handshake reply from {host}:{port}: {welcome!r}"
            )
        #: Server-reported session info (session_id, num_workers, …).
        self.server_info: dict[str, Any] = dict(welcome[1])
        self._receiver = threading.Thread(
            target=self._receive_loop, name="repro-serve-client", daemon=True
        )
        self._receiver.start()

    # -- submitting ----------------------------------------------------------

    def submit(
        self,
        pipeline: "ERPipeline",
        r,
        s=None,
        *,
        num_r_partitions: int | None = None,
        num_s_partitions: int | None = None,
        timeout: float = 60.0,
    ) -> RemoteExecution:
        """Run one pipeline on the server; returns the live handle.

        The request is resolved locally — strategy, blocking, matcher,
        partitioning, exactly as ``pipeline.submit`` would — and
        shipped; the pipeline's *backend* is irrelevant (the server's
        shared pool executes).  Streaming record sources are
        materialized into partitions before shipping, since a source
        (generators, open files) rarely survives pickling.

        Raises :class:`SubmissionRejected` when the server refuses
        (draining or bad request) and :class:`ServeConnectionError`
        when the connection fails.
        """
        request = pipeline.build_request(
            r,
            s,
            num_r_partitions=num_r_partitions,
            num_s_partitions=num_s_partitions,
        )
        return self._roundtrip("submit", (self._shipped(request),), timeout)

    def submit_delta(
        self,
        pipeline: "ERPipeline",
        new_records,
        state_name: str,
        *,
        num_partitions: int | None = None,
        timeout: float = 60.0,
    ) -> RemoteExecution:
        """Ingest a batch of records into the server-resident corpus
        state ``state_name``; returns the live handle on the delta run.

        The batch is resolved into a plain request locally (strategy,
        blocking, matcher, partitioning — exactly as :meth:`submit`
        would); the *server* merges the corpus state persisted under
        its ``--state-root`` into the run as a delta, serializes
        ingests per state name, and advances the state atomically
        before reporting success.  The handle's matches and result are
        the *new* pairs only — the old corpus never re-compares.

        Raises :class:`SubmissionRejected` when the server refuses
        (no state root, bad state name, draining) and
        :class:`ServeConnectionError` when the connection fails.
        """
        request = pipeline.build_request(
            new_records, num_r_partitions=num_partitions
        )
        return self._roundtrip(
            "submit-delta", (state_name, self._shipped(request)), timeout
        )

    @staticmethod
    def _shipped(request):
        """``request`` with any streaming source materialized (sources
        — generators, open files — rarely survive pickling)."""
        if request.source is None:
            return request
        return replace(
            request,
            partitions=request.partitions
            or tuple(request.source.as_partitions()),
            source=None,
        )

    def _roundtrip(
        self, verb: str, tail: tuple, timeout: float
    ) -> RemoteExecution:
        """Ship one submission, wait for accepted/rejected."""
        with self._lock:
            if self._closed:
                raise ServeConnectionError("client is closed")
            ticket = next(self._tickets)
            pending = _PendingSubmit()
            self._pending[ticket] = pending
        try:
            self._conn.send((verb, ticket, *tail))
        except (TransportError, OSError) as exc:
            with self._lock:
                self._pending.pop(ticket, None)
            raise ServeConnectionError(f"submission failed: {exc}") from exc
        if not pending.event.wait(timeout):
            with self._lock:
                self._pending.pop(ticket, None)
            raise TimeoutError(
                f"server did not answer the submission within {timeout}s"
            )
        if pending.execution is None:
            raise SubmissionRejected(
                pending.rejection or "submission rejected"
            )
        return pending.execution

    def _send_cancel(self, job_id: int) -> None:
        try:
            self._conn.send(("cancel", job_id))
        except (TransportError, OSError):
            pass  # the receiver loop will fail the handle

    # -- the receiver thread -------------------------------------------------

    def _receive_loop(self) -> None:
        while True:
            try:
                message = self._conn.recv()
            except (TransportError, OSError):
                self._fail_outstanding()
                return
            if not isinstance(message, tuple) or not message:
                continue
            verb = message[0]
            if verb == "accepted":
                _, ticket, job_id = message
                execution = RemoteExecution(self, job_id)
                with self._lock:
                    self._jobs[job_id] = execution
                    pending = self._pending.pop(ticket, None)
                if pending is not None:
                    pending.execution = execution
                    pending.event.set()
            elif verb == "rejected":
                _, ticket, reason = message
                with self._lock:
                    pending = self._pending.pop(ticket, None)
                if pending is not None:
                    pending.rejection = str(reason)
                    pending.event.set()
            elif verb == "event":
                _, job_id, event = message
                with self._lock:
                    execution = self._jobs.get(job_id)
                if execution is not None:
                    execution._on_event(event)
                if self._on_event is not None:
                    self._on_event(event)
            elif verb in ("done", "failed", "cancelled"):
                self._finish_job(message)
            elif verb == "shutting-down":
                self.server_draining = True

    def _finish_job(self, message: tuple) -> None:
        verb, job_id = message[0], message[1]
        with self._lock:
            execution = self._jobs.pop(job_id, None)
        if execution is None:
            return
        if verb == "done":
            execution._finish(SUCCEEDED, result=message[2])
        elif verb == "failed":
            execution._finish(FAILED, error=message[2])
        else:
            execution._finish(
                CANCELLED, error=PipelineCancelled("execution cancelled")
            )

    def _fail_outstanding(self) -> None:
        error = ServeConnectionError("connection to the ER server was lost")
        with self._lock:
            jobs = list(self._jobs.values())
            self._jobs.clear()
            pending = list(self._pending.values())
            self._pending.clear()
            self._closed = True
        for execution in jobs:
            execution._finish(FAILED, error=error)
        for entry in pending:
            entry.rejection = str(error)
            entry.event.set()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """End the session (idempotent).

        Jobs still running on the server are cancelled by it when the
        connection drops; their local handles fail with
        :class:`ServeConnectionError`.
        """
        with self._lock:
            if self._closed:
                self._conn.close()
                return
            self._closed = True
        try:
            self._conn.send(("bye",))
        except (TransportError, OSError):
            pass
        self._conn.close()
        self._receiver.join(timeout=10)

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"ServeClient(jobs={len(self._jobs)}, "
                f"closed={self._closed})"
            )
