"""ER as a service: a persistent driver daemon with a TCP front end.

The paper's driver, kept alive: ``python -m repro.serve --workers N``
starts an :class:`ERServer` that pays worker-pool startup once and then
executes any number of concurrently submitted pipeline runs,
multiplexing all their task units over the one
:class:`SharedWorkerPool` with fair round-robin scheduling.  Clients
connect over the same authenticated length-prefixed transport the
worker protocol uses and get the full execution surface remotely
through :class:`ServeClient` / :class:`RemoteExecution` — streamed
matches, progress, cooperative cancel, final results — byte-identical
to running the same pipeline locally.

Quick tour::

    server = ERServer(num_workers=4, workload_log="jobs.jsonl").start()
    host, port = server.address

    with ServeClient(host, port, token=server.token) as client:
        execution = client.submit(pipeline, entities)
        for pair in execution.iter_matches():
            ...
        result = execution.result()

    server.shutdown()

See ``docs/architecture.md`` for the server/session/job anatomy and
failure semantics, and ``docs/api.md`` for the client guide.
"""

from .client import (
    RemoteExecution,
    ServeClient,
    ServeConnectionError,
    SubmissionRejected,
)
from .pool import (
    PooledBackend,
    PooledRuntime,
    PoolJobChannel,
    SharedWorkerPool,
    WorkerPoolError,
)
from .protocol import ENV_SERVE_TOKEN, service_token, wire_event
from .server import ERServer

__all__ = [
    "ENV_SERVE_TOKEN",
    "ERServer",
    "PooledBackend",
    "PooledRuntime",
    "PoolJobChannel",
    "RemoteExecution",
    "ServeClient",
    "ServeConnectionError",
    "SharedWorkerPool",
    "SubmissionRejected",
    "WorkerPoolError",
    "service_token",
    "wire_event",
]
