"""Batched pair scoring over packed arrays — the vectorized match kernel.

PR 3 made the per-pair hot path fast (interned strings, Myers' bit-
parallel kernel, a bounded LRU memo); this module removes the per-pair
Python overhead around it.  A reduce group's candidate pairs are
described *symbolically* by a :class:`PairSpec` — a triangle, a cross
product, or a list of contiguous spans — instead of materialized
``(i, j)`` tuples, and :func:`score_pair_batch` scores the whole batch
in one call:

1. the group's strings are packed once into code/length arrays (each
   *distinct* string gets one integer code, so duplicate-heavy groups
   collapse),
2. a vectorized exact-equality check settles same-string pairs at 1.0,
3. a vectorized length filter settles hopeless pairs at 0.0 (the same
   ``diff > ⌊(1 − t)·longest⌋`` test the scalar matcher applies),
4. the surviving pairs are grouped by distinct unordered string pair
   and each distinct pair runs Myers' bit-parallel loop exactly once,
   over pattern masks prepacked per distinct string
   (:func:`repro.er.similarity.myers_masks`) — not per pair.

When numpy is importable, steps 2–4 use int64/float64 array arithmetic,
and step 4 runs the Myers recurrence itself *batched*: every distinct
surviving pair that needs the bit-parallel kernel becomes one ``uint64``
lane of :func:`repro.er.similarity.myers_distance_batch`, which advances
all lanes one text position per vectorized step (with the Ukkonen early
exit applied vector-wide through a per-lane alive mask).  Otherwise a
pure-stdlib loop with the identical dedup/memo structure runs.

Both paths are byte-identical to the scalar kernel — including the
matcher's LRU memo.  Scores are easy: every score is either ``1.0``/
``0.0`` from the same short-circuits the scalar matcher applies or the
output of the same bounded Myers/banded kernels it calls.  Cache
counters and cache *contents* are the subtle part: the batch computes
each distinct pair once, but the scalar matcher probes its LRU once per
pair occurrence, so under eviction pressure (more distinct surviving
pairs than ``memoize``) a naive per-distinct accounting drifts — both
in hit/miss totals and in which entries survive into later groups.
:class:`_DistinctScorer` therefore *replays* the scalar pop/evict/
reinsert discipline per pair occurrence, in pair order, against the
shared cache (taking a closed-form shortcut only when no eviction can
occur, where the replay's outcome is provable in advance).  Matches,
per-task outputs, all counters, and the residual cache state are
identical whichever path ran.  numpy stays an *optional* dependency
(the ``fast`` extra); set ``REPRO_ER_FORCE_STDLIB=1`` to force the
fallback with numpy installed.
"""

from __future__ import annotations

import os
from array import array
from bisect import bisect_right
from math import isqrt
from typing import Iterator, Sequence

from .similarity import (
    levenshtein_similarity_bounded,
    myers_distance_batch,
    myers_distance_masks,
    myers_masks,
)

try:  # pragma: no cover - exercised via both CI legs
    if os.environ.get("REPRO_ER_FORCE_STDLIB"):
        raise ImportError("numpy disabled by REPRO_ER_FORCE_STDLIB")
    import numpy as _numpy
except ImportError:  # pragma: no cover
    _numpy = None

#: Below this many pairs the numpy path's array-construction overhead
#: outweighs the vectorization win on small groups; the stdlib loop
#: runs instead.  Both paths are byte-identical, so this is purely a
#: performance knob.
NUMPY_MIN_PAIRS = 16

#: Below this many Myers-eligible lanes the batched recurrence's setup
#: (mask table, padded text matrix) outweighs its per-step win and the
#: per-distinct-pair scalar loop runs instead.  Byte-identical either
#: way; purely a performance knob.
MYERS_MIN_LANES = 4


def active_numpy():
    """The numpy module the kernel will use, or ``None`` (stdlib fallback)."""
    return _numpy


class TrianglePairs:
    """All pairs ``(i, j)`` with ``i < j`` over a self-join group of ``n``.

    Pair order matches the streaming-buffer loops it replaces: ``j``
    ascending (arrival order of the right entity), ``i`` ascending
    within each ``j`` (buffer order).
    """

    __slots__ = ("n", "count")

    def __init__(self, n: int):
        self.n = n
        self.count = n * (n - 1) // 2

    def iter_pairs(self) -> Iterator[tuple[int, int]]:
        for j in range(1, self.n):
            for i in range(j):
                yield i, j

    def pair_at(self, k: int) -> tuple[int, int]:
        # k = j·(j−1)/2 + i with 0 ≤ i < j; isqrt inverts the triangle
        # number exactly (8k+1 lies in [(2j−1)², (2j+1)²) for the row).
        j = (1 + isqrt(8 * k + 1)) // 2
        return k - j * (j - 1) // 2, j

    def index_arrays(self, np):
        j = np.repeat(
            np.arange(1, self.n, dtype=np.int64), np.arange(1, self.n)
        )
        i = np.arange(self.count, dtype=np.int64) - j * (j - 1) // 2
        return i, j


class CrossPairs:
    """All pairs ``(i, j)`` of a buffered run vs a streamed run.

    ``i`` ranges over the buffered prefix ``[0, split)`` and ``j`` over
    the streamed suffix ``[split, total)`` — the shape of BlockSplit's
    split×split cross tasks and of dual-source (R×S) groups, where the
    stable shuffle delivers one run contiguously before the other.
    Order: ``j`` ascending, ``i`` ascending within each ``j``.
    """

    __slots__ = ("split", "total", "count")

    def __init__(self, split: int, total: int):
        self.split = split
        self.total = total
        self.count = split * (total - split)

    def iter_pairs(self) -> Iterator[tuple[int, int]]:
        for j in range(self.split, self.total):
            for i in range(self.split):
                yield i, j

    def pair_at(self, k: int) -> tuple[int, int]:
        j, i = divmod(k, self.split)
        return i, self.split + j

    def index_arrays(self, np):
        streamed = self.total - self.split
        i = np.tile(np.arange(self.split, dtype=np.int64), streamed)
        j = np.repeat(
            np.arange(self.split, self.total, dtype=np.int64), self.split
        )
        return i, j


class SpanPairs:
    """Pairs where each streamed entity sees one contiguous buffer run.

    ``spans`` is a list of ``(j, start, stop)``: entity ``j`` compares
    against buffer positions ``[start, stop)``.  This is PairRange's
    natural shape — ``row_span``/``r_span`` already yield index
    intervals, which are recorded here instead of being materialized
    into pairs — and also covers delta groups (each new entity vs the
    whole buffered prefix).  Order: spans in given order (``j``
    ascending at every call site), ``i`` ascending within a span.
    """

    __slots__ = ("spans", "count", "_offsets")

    def __init__(self, spans: Sequence[tuple[int, int, int]]):
        self.spans = spans
        offsets = [0]
        total = 0
        for _j, start, stop in spans:
            total += stop - start
            offsets.append(total)
        self._offsets = offsets
        self.count = total

    def iter_pairs(self) -> Iterator[tuple[int, int]]:
        for j, start, stop in self.spans:
            for i in range(start, stop):
                yield i, j

    def pair_at(self, k: int) -> tuple[int, int]:
        s = bisect_right(self._offsets, k) - 1
        j, start, _stop = self.spans[s]
        return start + (k - self._offsets[s]), j

    def index_arrays(self, np):
        if not self.spans:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        i = np.concatenate(
            [np.arange(start, stop, dtype=np.int64) for _j, start, stop in self.spans]
        )
        j = np.repeat(
            np.fromiter((j for j, _s, _t in self.spans), dtype=np.int64, count=len(self.spans)),
            np.fromiter((stop - start for _j, start, stop in self.spans), dtype=np.int64, count=len(self.spans)),
        )
        return i, j


class _DistinctScorer:
    """Computes each *distinct* unordered string pair of a batch once,
    while replaying the scalar matcher's LRU discipline per occurrence.

    Two responsibilities, deliberately separated:

    * **Scoring** (:meth:`prime` / :meth:`touch` misses) computes every
      distinct pair's similarity exactly once — batched through
      :func:`~repro.er.similarity.myers_distance_batch` when numpy is
      active and enough lanes qualify, else via the same bounded
      kernels the scalar matcher calls, with Myers pattern masks
      prepacked per distinct string.  Scores land in ``_scores`` and
      never depend on the shared cache's state.
    * **Cache bookkeeping** (:meth:`touch` / :meth:`replay_keys`)
      reproduces, per pair occurrence and in pair order, exactly the
      pop → count hit/miss → evict → reinsert sequence the scalar
      matcher runs against its LRU.  That keeps ``hits``/``misses``
      *and* the cache's residual contents and recency order
      byte-identical under eviction pressure, so later groups — scalar
      or batched — observe the same cache either way.
    """

    __slots__ = (
        "_threshold", "_cache", "_memoize", "_masks", "_scores",
        "hits", "misses",
    )

    def __init__(self, threshold: float, cache: dict | None, memoize: int):
        self._threshold = threshold
        self._cache = cache
        self._memoize = memoize
        self._masks: dict[str, object] = {}
        #: Batch-local score memo keyed by the canonical ``(min, max)``
        #: string pair — the compute-once guarantee.
        self._scores: dict[tuple[str, str], float] = {}
        self.hits = 0
        self.misses = 0

    def touch(self, a: str, b: str) -> float:
        """One pair occurrence, exactly as the scalar matcher runs it.

        Same ``(min, max)`` cache key, same pop/reinsert LRU discipline
        and eviction bound, same hit/miss accounting — except that a
        miss whose pair was already computed this batch reuses the
        memoised score instead of recomputing (scores are pure values,
        so the result is identical).
        """
        key = (a, b) if a <= b else (b, a)
        cache = self._cache
        score = cache.pop(key, None) if cache is not None else None
        if score is None:
            self.misses += 1
            score = self._scores.get(key)
            if score is None:
                score = self._scores[key] = self._compute(key[0], key[1])
        else:
            self.hits += 1
            self._scores[key] = score
        if self._memoize and cache is not None:
            if len(cache) >= self._memoize:
                try:
                    cache.pop(next(iter(cache)), None)
                except (StopIteration, RuntimeError):
                    pass
            cache[key] = score
        return score

    def prime(self, np, keys: list[tuple[str, str]]) -> None:
        """Precompute ``_scores`` for canonical distinct pair ``keys``.

        Pairs already in the shared cache reuse the cached value (a
        non-mutating peek — the bookkeeping happens in replay); the
        rest are computed, batching every Myers-eligible pair (shorter
        side 1–64 chars) into one vectorized recurrence when ``np`` is
        active and at least :data:`MYERS_MIN_LANES` lanes qualify.
        """
        cache = self._cache
        scores = self._scores
        lanes: list[tuple[tuple[str, str], str, str, int]] = []
        for key in keys:
            if cache is not None:
                cached = cache.get(key)
                if cached is not None:
                    scores[key] = cached
                    continue
            a, b = key
            la = len(a)
            lb = len(b)
            if la >= lb:
                text, pattern, shorter, longest = a, b, lb, la
            else:
                text, pattern, shorter, longest = b, a, la, lb
            if 1 <= shorter <= 64:
                lanes.append((key, pattern, text, longest))
            else:
                scores[key] = levenshtein_similarity_bounded(
                    a, b, self._threshold
                )
        if not lanes:
            return
        if np is None or len(lanes) < MYERS_MIN_LANES:
            for key, _pattern, _text, _longest in lanes:
                scores[key] = self._compute(key[0], key[1])
            return
        one_minus = 1.0 - self._threshold
        budgets = [int(one_minus * longest) for _k, _p, _t, longest in lanes]
        distances = myers_distance_batch(
            np,
            [pattern for _k, pattern, _t, _l in lanes],
            [text for _k, _p, text, _l in lanes],
            budgets,
        )
        longests = np.fromiter(
            (longest for _k, _p, _t, longest in lanes),
            dtype=np.int64, count=len(lanes),
        )
        budgets_arr = np.fromiter(budgets, dtype=np.int64, count=len(lanes))
        # Same float64 arithmetic as the scalar ``1.0 - d / longest``.
        sims = np.where(
            distances > budgets_arr, 0.0, 1.0 - distances / longests
        )
        for (key, _p, _t, _l), sim in zip(lanes, sims.tolist()):
            scores[key] = sim

    def replay_keys(self, keys) -> None:
        """Replay the scalar LRU discipline over primed ``keys`` in
        pair order (every score must already be in ``_scores``)."""
        cache = self._cache
        memoize = self._memoize
        scores = self._scores
        for key in keys:
            score = cache.pop(key, None)
            if score is None:
                self.misses += 1
                score = scores[key]
            else:
                self.hits += 1
            if memoize:
                if len(cache) >= memoize:
                    try:
                        cache.pop(next(iter(cache)), None)
                    except (StopIteration, RuntimeError):
                        pass
                cache[key] = score

    def _compute(self, a: str, b: str) -> float:
        # levenshtein_similarity_bounded for a != b, with the Myers
        # dispatch case running over prepacked per-string masks.
        la = len(a)
        lb = len(b)
        if la >= lb:
            text, pattern, shorter = a, b, lb
        else:
            text, pattern, shorter = b, a, la
        if 1 <= shorter <= 64:
            longest = la if la >= lb else lb
            max_distance = int((1.0 - self._threshold) * longest)
            masks = self._masks.get(pattern)
            if masks is None:
                masks = self._masks[pattern] = myers_masks(pattern)
            distance = myers_distance_masks(masks, text, max_distance)
            if distance > max_distance:
                return 0.0
            return 1.0 - distance / longest
        # Empty-vs-nonempty and >64-char patterns: the scalar routine
        # already handles these cases via its own dispatch.
        return levenshtein_similarity_bounded(a, b, self._threshold)


def score_pair_batch(
    texts: Sequence[str],
    pairs,
    threshold: float,
    *,
    cache: dict | None = None,
    memoize: int = 0,
):
    """Score every pair of a batch; returns ``(scores, hits, misses)``.

    ``texts`` holds the group's strings (position-aligned with the
    indices ``pairs`` yields), ``pairs`` is a :class:`TrianglePairs`/
    :class:`CrossPairs`/:class:`SpanPairs` spec, and ``cache``/
    ``memoize`` are the matcher's persistent score memo and its bound.
    ``scores`` is index-aligned with the spec's pair order (a float64
    ndarray on the numpy path, a list on the stdlib path); ``hits``/
    ``misses`` are exactly the cache-counter increments the scalar path
    would have recorded for the same pairs, and ``cache`` is left with
    exactly the contents *and* recency order the scalar path would have
    left — the LRU discipline is replayed per occurrence in pair order,
    so eviction pressure cannot make later batches drift.
    """
    np = _numpy
    if np is not None and pairs.count >= NUMPY_MIN_PAIRS:
        return _score_numpy(np, texts, pairs, threshold, cache, memoize)
    return _score_stdlib(texts, pairs, threshold, cache, memoize)


def matching_positions(scores, threshold: float) -> list[int]:
    """Positions (pair order) whose score clears ``threshold``."""
    if _numpy is not None and isinstance(scores, _numpy.ndarray):
        return _numpy.nonzero(scores >= threshold)[0].tolist()
    return [k for k, score in enumerate(scores) if score >= threshold]


def _encode(texts: Sequence[str]) -> tuple[list[int], list[str]]:
    """Pack strings into integer codes; one code per distinct string."""
    code_of: dict[str, int] = {}
    codes: list[int] = []
    distinct: list[str] = []
    for text in texts:
        code = code_of.get(text)
        if code is None:
            code = len(distinct)
            code_of[text] = code
            distinct.append(text)
        codes.append(code)
    return codes, distinct


def _score_numpy(np, texts, pairs, threshold, cache, memoize):
    codes, distinct = _encode(texts)
    left, right = pairs.index_arrays(np)
    codes_arr = np.fromiter(codes, dtype=np.int64, count=len(codes))
    lengths = np.fromiter(
        (len(s) for s in distinct), dtype=np.int64, count=len(distinct)
    )
    ca = codes_arr[left]
    cb = codes_arr[right]
    la = lengths[ca]
    lb = lengths[cb]
    longest = np.maximum(la, lb)
    scores = np.zeros(pairs.count, dtype=np.float64)
    equal = ca == cb
    scores[equal] = 1.0
    # float64 multiply + int64 truncation ≡ the scalar int((1−t)·longest).
    budget = ((1.0 - threshold) * longest).astype(np.int64)
    survive = ~equal & (np.abs(la - lb) <= budget)
    if not survive.any():
        return scores, 0, 0
    sa = ca[survive]
    sb = cb[survive]
    lo = np.minimum(sa, sb)
    hi = np.maximum(sa, sb)
    ndistinct = len(distinct)
    # pair_keys is in spec pair order (boolean masking preserves order),
    # which is exactly the order the scalar matcher would have probed
    # its cache in — the order the LRU replay below must follow.
    pair_keys = lo * np.int64(ndistinct) + hi
    unique_keys, inverse = np.unique(pair_keys, return_inverse=True)
    scorer = _DistinctScorer(threshold, cache, memoize)
    canonical: list[tuple[str, str]] = []
    for key in unique_keys.tolist():
        qa, qb = divmod(key, ndistinct)
        a = distinct[qa]
        b = distinct[qb]
        canonical.append((a, b) if a <= b else (b, a))
    scorer.prime(np, canonical)
    unique_scores = np.fromiter(
        (scorer._scores[key] for key in canonical),
        dtype=np.float64, count=len(canonical),
    )
    scores[survive] = unique_scores[inverse]
    occurrences = int(pair_keys.shape[0])
    if cache is None or (not cache and not memoize):
        # No LRU state to maintain: the scalar path would miss on every
        # occurrence (nothing is ever inserted), so the counters are
        # closed-form and no replay is needed.
        return scores, 0, occurrences
    uncached = sum(1 for key in canonical if key not in cache)
    if len(cache) + uncached <= memoize:
        # No eviction can trigger during this batch (the cache can
        # only grow by the uncached distinct pairs), so the scalar
        # replay's outcome is provable in closed form: the first
        # occurrence of an uncached pair misses, everything else hits,
        # and each touched key ends up reinserted at its *last*
        # occurrence — i.e. after all untouched entries, ordered by
        # last occurrence in pair order.
        _, rev_index = np.unique(pair_keys[::-1], return_index=True)
        last_order = np.argsort(-rev_index)
        for u in last_order.tolist():
            key = canonical[u]
            value = cache.pop(key, scorer._scores[key])
            cache[key] = value
        return scores, occurrences - uncached, uncached
    scorer.replay_keys(canonical[u] for u in inverse.tolist())
    return scores, scorer.hits, scorer.misses


def _score_stdlib(texts, pairs, threshold, cache, memoize):
    codes, distinct = _encode(texts)
    lengths = array("q", (len(s) for s in distinct))
    scorer = _DistinctScorer(threshold, cache, memoize)
    scores = [0.0] * pairs.count
    one_minus = 1.0 - threshold
    touch = scorer.touch
    for k, (i, j) in enumerate(pairs.iter_pairs()):
        a = codes[i]
        b = codes[j]
        if a == b:
            scores[k] = 1.0
            continue
        la = lengths[a]
        lb = lengths[b]
        if la >= lb:
            longest = la
            diff = la - lb
        else:
            longest = lb
            diff = lb - la
        if diff > int(one_minus * longest):
            continue  # length filter: stays 0.0
        # touch() replays the scalar LRU discipline per occurrence and
        # computes each distinct pair at most once (scorer._scores).
        scores[k] = touch(distinct[a], distinct[b])
    return scores, scorer.hits, scorer.misses
