"""Batched pair scoring over packed arrays — the vectorized match kernel.

PR 3 made the per-pair hot path fast (interned strings, Myers' bit-
parallel kernel, a bounded LRU memo); this module removes the per-pair
Python overhead around it.  A reduce group's candidate pairs are
described *symbolically* by a :class:`PairSpec` — a triangle, a cross
product, or a list of contiguous spans — instead of materialized
``(i, j)`` tuples, and :func:`score_pair_batch` scores the whole batch
in one call:

1. the group's strings are packed once into code/length arrays (each
   *distinct* string gets one integer code, so duplicate-heavy groups
   collapse),
2. a vectorized exact-equality check settles same-string pairs at 1.0,
3. a vectorized length filter settles hopeless pairs at 0.0 (the same
   ``diff > ⌊(1 − t)·longest⌋`` test the scalar matcher applies),
4. the surviving pairs are grouped by distinct unordered string pair
   and each distinct pair runs Myers' bit-parallel loop exactly once,
   over pattern masks prepacked per distinct string
   (:func:`repro.er.similarity.myers_masks`) — not per pair.

When numpy is importable, steps 2–4 use int64/float64 array arithmetic;
otherwise a pure-stdlib loop with the identical dedup/memo structure
runs.  Both paths are byte-identical to the scalar kernel: every score
they produce is either ``1.0``/``0.0`` from the same short-circuits the
scalar matcher applies or the output of the same bounded Myers/banded
kernels it calls, so matches, per-task outputs, and counters do not
change when batching is switched on.  numpy stays an *optional*
dependency (the ``fast`` extra); set ``REPRO_ER_FORCE_STDLIB=1`` to
force the fallback with numpy installed.
"""

from __future__ import annotations

import os
from array import array
from bisect import bisect_right
from math import isqrt
from typing import Iterator, Sequence

from .similarity import (
    levenshtein_similarity_bounded,
    myers_distance_masks,
    myers_masks,
)

try:  # pragma: no cover - exercised via both CI legs
    if os.environ.get("REPRO_ER_FORCE_STDLIB"):
        raise ImportError("numpy disabled by REPRO_ER_FORCE_STDLIB")
    import numpy as _numpy
except ImportError:  # pragma: no cover
    _numpy = None

#: Below this many pairs the numpy path's array-construction overhead
#: outweighs the vectorization win on small groups; the stdlib loop
#: runs instead.  Both paths are byte-identical, so this is purely a
#: performance knob.
NUMPY_MIN_PAIRS = 16


def active_numpy():
    """The numpy module the kernel will use, or ``None`` (stdlib fallback)."""
    return _numpy


class TrianglePairs:
    """All pairs ``(i, j)`` with ``i < j`` over a self-join group of ``n``.

    Pair order matches the streaming-buffer loops it replaces: ``j``
    ascending (arrival order of the right entity), ``i`` ascending
    within each ``j`` (buffer order).
    """

    __slots__ = ("n", "count")

    def __init__(self, n: int):
        self.n = n
        self.count = n * (n - 1) // 2

    def iter_pairs(self) -> Iterator[tuple[int, int]]:
        for j in range(1, self.n):
            for i in range(j):
                yield i, j

    def pair_at(self, k: int) -> tuple[int, int]:
        # k = j·(j−1)/2 + i with 0 ≤ i < j; isqrt inverts the triangle
        # number exactly (8k+1 lies in [(2j−1)², (2j+1)²) for the row).
        j = (1 + isqrt(8 * k + 1)) // 2
        return k - j * (j - 1) // 2, j

    def index_arrays(self, np):
        j = np.repeat(
            np.arange(1, self.n, dtype=np.int64), np.arange(1, self.n)
        )
        i = np.arange(self.count, dtype=np.int64) - j * (j - 1) // 2
        return i, j


class CrossPairs:
    """All pairs ``(i, j)`` of a buffered run vs a streamed run.

    ``i`` ranges over the buffered prefix ``[0, split)`` and ``j`` over
    the streamed suffix ``[split, total)`` — the shape of BlockSplit's
    split×split cross tasks and of dual-source (R×S) groups, where the
    stable shuffle delivers one run contiguously before the other.
    Order: ``j`` ascending, ``i`` ascending within each ``j``.
    """

    __slots__ = ("split", "total", "count")

    def __init__(self, split: int, total: int):
        self.split = split
        self.total = total
        self.count = split * (total - split)

    def iter_pairs(self) -> Iterator[tuple[int, int]]:
        for j in range(self.split, self.total):
            for i in range(self.split):
                yield i, j

    def pair_at(self, k: int) -> tuple[int, int]:
        j, i = divmod(k, self.split)
        return i, self.split + j

    def index_arrays(self, np):
        streamed = self.total - self.split
        i = np.tile(np.arange(self.split, dtype=np.int64), streamed)
        j = np.repeat(
            np.arange(self.split, self.total, dtype=np.int64), self.split
        )
        return i, j


class SpanPairs:
    """Pairs where each streamed entity sees one contiguous buffer run.

    ``spans`` is a list of ``(j, start, stop)``: entity ``j`` compares
    against buffer positions ``[start, stop)``.  This is PairRange's
    natural shape — ``row_span``/``r_span`` already yield index
    intervals, which are recorded here instead of being materialized
    into pairs — and also covers delta groups (each new entity vs the
    whole buffered prefix).  Order: spans in given order (``j``
    ascending at every call site), ``i`` ascending within a span.
    """

    __slots__ = ("spans", "count", "_offsets")

    def __init__(self, spans: Sequence[tuple[int, int, int]]):
        self.spans = spans
        offsets = [0]
        total = 0
        for _j, start, stop in spans:
            total += stop - start
            offsets.append(total)
        self._offsets = offsets
        self.count = total

    def iter_pairs(self) -> Iterator[tuple[int, int]]:
        for j, start, stop in self.spans:
            for i in range(start, stop):
                yield i, j

    def pair_at(self, k: int) -> tuple[int, int]:
        s = bisect_right(self._offsets, k) - 1
        j, start, _stop = self.spans[s]
        return start + (k - self._offsets[s]), j

    def index_arrays(self, np):
        if not self.spans:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        i = np.concatenate(
            [np.arange(start, stop, dtype=np.int64) for _j, start, stop in self.spans]
        )
        j = np.repeat(
            np.fromiter((j for j, _s, _t in self.spans), dtype=np.int64, count=len(self.spans)),
            np.fromiter((stop - start for _j, start, stop in self.spans), dtype=np.int64, count=len(self.spans)),
        )
        return i, j


class _DistinctScorer:
    """Scores each *distinct* unordered string pair of a batch once.

    Replicates the cache/kernel stage of the scalar matcher exactly:
    the same ``(min, max)`` cache key, the same pop/reinsert LRU
    discipline and eviction bound, and the same bounded-similarity
    arithmetic — with Myers pattern masks prepacked per distinct string
    so a pattern shared by many pairs is packed once.
    """

    __slots__ = ("_threshold", "_cache", "_memoize", "_masks", "hits", "misses")

    def __init__(self, threshold: float, cache: dict | None, memoize: int):
        self._threshold = threshold
        self._cache = cache
        self._memoize = memoize
        self._masks: dict[str, object] = {}
        self.hits = 0
        self.misses = 0

    def score(self, a: str, b: str) -> float:
        """Score the first group occurrence of the pair ``{a, b}``."""
        key = (a, b) if a <= b else (b, a)
        cache = self._cache
        score = cache.pop(key, None) if cache is not None else None
        if score is None:
            self.misses += 1
            score = self._compute(a, b)
        else:
            self.hits += 1
        if self._memoize and cache is not None:
            if len(cache) >= self._memoize:
                try:
                    cache.pop(next(iter(cache)), None)
                except (StopIteration, RuntimeError):
                    pass
            cache[key] = score
        return score

    def note_repeats(self, n: int) -> None:
        """Account for ``n`` further group occurrences of a scored pair.

        With the memo enabled the scalar path would find each repeat in
        the cache (a hit); with it disabled every repeat recomputes (a
        miss).  Either way the batch computes the score only once.
        """
        if n <= 0:
            return
        if self._memoize:
            self.hits += n
        else:
            self.misses += n

    def _compute(self, a: str, b: str) -> float:
        # levenshtein_similarity_bounded for a != b, with the Myers
        # dispatch case running over prepacked per-string masks.
        la = len(a)
        lb = len(b)
        if la >= lb:
            text, pattern, shorter = a, b, lb
        else:
            text, pattern, shorter = b, a, la
        if 1 <= shorter <= 64:
            longest = la if la >= lb else lb
            max_distance = int((1.0 - self._threshold) * longest)
            masks = self._masks.get(pattern)
            if masks is None:
                masks = self._masks[pattern] = myers_masks(pattern)
            distance = myers_distance_masks(masks, text, max_distance)
            if distance > max_distance:
                return 0.0
            return 1.0 - distance / longest
        # Empty-vs-nonempty and >64-char patterns: the scalar routine
        # already handles these cases via its own dispatch.
        return levenshtein_similarity_bounded(a, b, self._threshold)


def score_pair_batch(
    texts: Sequence[str],
    pairs,
    threshold: float,
    *,
    cache: dict | None = None,
    memoize: int = 0,
):
    """Score every pair of a batch; returns ``(scores, hits, misses)``.

    ``texts`` holds the group's strings (position-aligned with the
    indices ``pairs`` yields), ``pairs`` is a :class:`TrianglePairs`/
    :class:`CrossPairs`/:class:`SpanPairs` spec, and ``cache``/
    ``memoize`` are the matcher's persistent score memo and its bound.
    ``scores`` is index-aligned with the spec's pair order (a float64
    ndarray on the numpy path, a list on the stdlib path); ``hits``/
    ``misses`` are the cache-counter increments the scalar path would
    have recorded for the same pairs.
    """
    np = _numpy
    if np is not None and pairs.count >= NUMPY_MIN_PAIRS:
        return _score_numpy(np, texts, pairs, threshold, cache, memoize)
    return _score_stdlib(texts, pairs, threshold, cache, memoize)


def matching_positions(scores, threshold: float) -> list[int]:
    """Positions (pair order) whose score clears ``threshold``."""
    if _numpy is not None and isinstance(scores, _numpy.ndarray):
        return _numpy.nonzero(scores >= threshold)[0].tolist()
    return [k for k, score in enumerate(scores) if score >= threshold]


def _encode(texts: Sequence[str]) -> tuple[list[int], list[str]]:
    """Pack strings into integer codes; one code per distinct string."""
    code_of: dict[str, int] = {}
    codes: list[int] = []
    distinct: list[str] = []
    for text in texts:
        code = code_of.get(text)
        if code is None:
            code = len(distinct)
            code_of[text] = code
            distinct.append(text)
        codes.append(code)
    return codes, distinct


def _score_numpy(np, texts, pairs, threshold, cache, memoize):
    codes, distinct = _encode(texts)
    left, right = pairs.index_arrays(np)
    codes_arr = np.fromiter(codes, dtype=np.int64, count=len(codes))
    lengths = np.fromiter(
        (len(s) for s in distinct), dtype=np.int64, count=len(distinct)
    )
    ca = codes_arr[left]
    cb = codes_arr[right]
    la = lengths[ca]
    lb = lengths[cb]
    longest = np.maximum(la, lb)
    scores = np.zeros(pairs.count, dtype=np.float64)
    equal = ca == cb
    scores[equal] = 1.0
    # float64 multiply + int64 truncation ≡ the scalar int((1−t)·longest).
    budget = ((1.0 - threshold) * longest).astype(np.int64)
    survive = ~equal & (np.abs(la - lb) <= budget)
    if not survive.any():
        return scores, 0, 0
    sa = ca[survive]
    sb = cb[survive]
    lo = np.minimum(sa, sb)
    hi = np.maximum(sa, sb)
    pair_keys = lo * np.int64(len(distinct)) + hi
    unique_keys, inverse, counts = np.unique(
        pair_keys, return_inverse=True, return_counts=True
    )
    scorer = _DistinctScorer(threshold, cache, memoize)
    unique_scores = np.empty(len(unique_keys), dtype=np.float64)
    ndistinct = len(distinct)
    for u, key in enumerate(unique_keys.tolist()):
        qa, qb = divmod(key, ndistinct)
        unique_scores[u] = scorer.score(distinct[qa], distinct[qb])
        scorer.note_repeats(int(counts[u]) - 1)
    scores[survive] = unique_scores[inverse]
    return scores, scorer.hits, scorer.misses


def _score_stdlib(texts, pairs, threshold, cache, memoize):
    codes, distinct = _encode(texts)
    lengths = array("q", (len(s) for s in distinct))
    scorer = _DistinctScorer(threshold, cache, memoize)
    scores = [0.0] * pairs.count
    memo: dict[tuple[int, int], float] = {}
    one_minus = 1.0 - threshold
    for k, (i, j) in enumerate(pairs.iter_pairs()):
        a = codes[i]
        b = codes[j]
        if a == b:
            scores[k] = 1.0
            continue
        la = lengths[a]
        lb = lengths[b]
        if la >= lb:
            longest = la
            diff = la - lb
        else:
            longest = lb
            diff = lb - la
        if diff > int(one_minus * longest):
            continue  # length filter: stays 0.0
        key = (a, b) if a < b else (b, a)
        score = memo.get(key)
        if score is None:
            memo[key] = score = scorer.score(distinct[key[0]], distinct[key[1]])
        else:
            scorer.note_repeats(1)
        scores[k] = score
    return scores, scorer.hits, scorer.misses
