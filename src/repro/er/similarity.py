"""String and numeric similarity measures.

The paper compares entities "by computing the edit distance of their
title" with a match threshold of 0.8.  We implement Levenshtein with
the standard normalisation ``1 - d / max(|a|, |b|)`` plus the usual ER
toolbox (Jaro, Jaro-Winkler, Jaccard over token or n-gram sets, numeric
closeness) so the library is usable beyond the single paper workload.

Edit distance is the per-pair hot path of the whole system, so
:func:`levenshtein_distance` dispatches to Myers' bit-parallel kernel
(shorter string ≤ 64 chars — the common ER case) or a banded DP, with
Ukkonen-style ``max_distance`` early exits throughout; the classic
two-row DP survives as :func:`levenshtein_distance_reference`, the
oracle the property tests and ``benchmarks/perf_harness.py`` measure
against.  :func:`similarity_at_least` is the boolean threshold fast
path (length filter before any DP).

All functions return similarities in ``[0, 1]`` where 1 means equal.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

SimilarityFunction = Callable[[str, str], float]


def levenshtein_distance_reference(
    a: str, b: str, *, max_distance: int | None = None
) -> int:
    """Classic dynamic-programming edit distance with two rows.

    This is the O(n·m) reference implementation the bit-parallel and
    banded kernels are verified against (and the "before" measurement
    of ``benchmarks/perf_harness.py``).  ``max_distance`` enables early
    exit: once every cell of a row exceeds the bound the true distance
    cannot come back under it, and ``max_distance + 1`` is returned.
    """
    if a == b:
        return 0
    # Ensure b is the shorter string to minimise the row size.
    if len(b) > len(a):
        a, b = b, a
    if not b:
        if max_distance is not None and len(a) > max_distance:
            return max_distance + 1
        return len(a)
    if max_distance is not None and len(a) - len(b) > max_distance:
        return max_distance + 1

    previous = list(range(len(b) + 1))
    current = [0] * (len(b) + 1)
    for i, ca in enumerate(a, start=1):
        current[0] = i
        best = current[0]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current[j] = min(
                previous[j] + 1,      # deletion
                current[j - 1] + 1,   # insertion
                previous[j - 1] + cost,  # substitution
            )
            if current[j] < best:
                best = current[j]
        if max_distance is not None and best > max_distance:
            return max_distance + 1
        previous, current = current, previous
    return previous[len(b)]


def _myers_distance(pattern: str, text: str, max_distance: int | None) -> int:
    """Myers' bit-parallel edit distance — O(|text|) word operations.

    ``pattern`` must be the shorter string and at most 64 characters;
    the whole DP column lives in the bits of two machine words (VP/VN,
    the positive/negative vertical deltas).  The running ``score`` is
    the value of the column's last cell; the final distance can drop by
    at most one per remaining text character, which gives the Ukkonen
    early exit ``score - remaining > max_distance``.
    """
    m = len(pattern)
    peq: dict[str, int] = {}
    bit = 1
    for ch in pattern:
        peq[ch] = peq.get(ch, 0) | bit
        bit <<= 1
    mask = (1 << m) - 1
    last = 1 << (m - 1)
    vp = mask
    vn = 0
    score = m
    get = peq.get
    if max_distance is None:
        for ch in text:
            eq = get(ch, 0)
            xv = eq | vn
            xh = (((eq & vp) + vp) ^ vp) | eq
            hp = vn | ~(xh | vp)
            hn = vp & xh
            if hp & last:
                score += 1
            elif hn & last:
                score -= 1
            hp = ((hp << 1) | 1) & mask
            hn = (hn << 1) & mask
            vp = (hn | ~(xv | hp)) & mask
            vn = hp & xv
        return score
    remaining = len(text)
    for ch in text:
        eq = get(ch, 0)
        xv = eq | vn
        xh = (((eq & vp) + vp) ^ vp) | eq
        hp = vn | ~(xh | vp)
        hn = vp & xh
        if hp & last:
            score += 1
        elif hn & last:
            score -= 1
        remaining -= 1
        if score - remaining > max_distance:
            return max_distance + 1
        hp = ((hp << 1) | 1) & mask
        hn = (hn << 1) & mask
        vp = (hn | ~(xv | hp)) & mask
        vn = hp & xv
    return score


MyersMasks = tuple[dict[str, int], int, int, int]


def myers_masks(pattern: str) -> MyersMasks:
    """Pre-packed bitmasks for running Myers' kernel against ``pattern``.

    Returns ``(peq, mask, last, m)`` — the per-character equality masks,
    the ``m``-bit column mask, the top-bit probe, and ``len(pattern)``.
    Building these is O(|pattern|) dict work and dominates the kernel on
    short strings, so batched scoring packs them once per *distinct*
    string and reuses them across every pair sharing that pattern
    (:mod:`repro.er.batch_kernel`).  ``pattern`` must be non-empty and
    at most 64 characters, same as :func:`_myers_distance`.
    """
    m = len(pattern)
    peq: dict[str, int] = {}
    bit = 1
    for ch in pattern:
        peq[ch] = peq.get(ch, 0) | bit
        bit <<= 1
    return peq, (1 << m) - 1, 1 << (m - 1), m


def myers_distance_masks(masks: MyersMasks, text: str, max_distance: int | None) -> int:
    """:func:`_myers_distance` over masks prepacked by :func:`myers_masks`.

    Identical loop, identical results — the only difference is that the
    per-call ``peq`` construction has been hoisted out so a batch of
    pairs sharing one pattern pays it once.
    """
    peq, mask, last, m = masks
    vp = mask
    vn = 0
    score = m
    get = peq.get
    if max_distance is None:
        for ch in text:
            eq = get(ch, 0)
            xv = eq | vn
            xh = (((eq & vp) + vp) ^ vp) | eq
            hp = vn | ~(xh | vp)
            hn = vp & xh
            if hp & last:
                score += 1
            elif hn & last:
                score -= 1
            hp = ((hp << 1) | 1) & mask
            hn = (hn << 1) & mask
            vp = (hn | ~(xv | hp)) & mask
            vn = hp & xv
        return score
    remaining = len(text)
    for ch in text:
        eq = get(ch, 0)
        xv = eq | vn
        xh = (((eq & vp) + vp) ^ vp) | eq
        hp = vn | ~(xh | vp)
        hn = vp & xh
        if hp & last:
            score += 1
        elif hn & last:
            score -= 1
        remaining -= 1
        if score - remaining > max_distance:
            return max_distance + 1
        hp = ((hp << 1) | 1) & mask
        hn = (hn << 1) & mask
        vp = (hn | ~(xv | hp)) & mask
        vn = hp & xv
    return score


def _banded_distance(a: str, b: str, bound: int) -> int:
    """Edit distance restricted to a diagonal band of half-width ``bound``.

    Exact whenever the true distance is ≤ ``bound`` (cells outside the
    band cannot lie on such an alignment); returns ``bound + 1``
    otherwise.  ``b`` must be the shorter string and
    ``len(a) - len(b) <= bound``.  O(|a|·bound) instead of O(|a|·|b|).
    """
    n, m = len(a), len(b)
    big = bound + 1
    # Row 0 of the DP table, clipped to the band: D[0][j] = j.
    prev_lo = 0
    prev = list(range(min(m, bound) + 1))
    for i in range(1, n + 1):
        lo = i - bound
        if lo < 0:
            lo = 0
        hi = i + bound
        if hi > m:
            hi = m
        ca = a[i - 1]
        current = []
        best = big
        for j in range(lo, hi + 1):
            if j == 0:
                val = i if i <= bound else big
            else:
                k = j - 1 - prev_lo
                sub = prev[k] if 0 <= k < len(prev) else big
                if ca != b[j - 1]:
                    sub += 1
                dele = prev[k + 1] + 1 if 0 <= k + 1 < len(prev) else big
                ins = current[-1] + 1 if current else big
                val = sub if sub < dele else dele
                if ins < val:
                    val = ins
                if val > big:
                    val = big
            current.append(val)
            if val < best:
                best = val
        if best > bound:
            return big
        prev, prev_lo = current, lo
    return prev[m - prev_lo] if prev[m - prev_lo] <= bound else big


def levenshtein_distance(a: str, b: str, *, max_distance: int | None = None) -> int:
    """Levenshtein edit distance via the fastest applicable kernel.

    Strings whose shorter side fits in a 64-bit word use Myers' bit-
    parallel kernel (O(n·m/64) word operations); longer inputs fall back
    to a banded DP — directly banded at ``max_distance`` when a bound is
    given, with Ukkonen's doubling bands (exact, O(n·d)) otherwise.
    Semantics are identical to :func:`levenshtein_distance_reference`:
    the exact distance, or ``max_distance + 1`` as soon as the bound is
    provably exceeded.
    """
    if a == b:
        return 0
    if len(b) > len(a):
        a, b = b, a
    la, lb = len(a), len(b)
    if max_distance is not None:
        if max_distance < 0:
            return max_distance + 1
        if la - lb > max_distance:
            return max_distance + 1  # length filter: no DP needed
    if not b:
        return la
    if lb <= 64:
        return _myers_distance(b, a, max_distance)
    if max_distance is not None:
        return _banded_distance(a, b, max_distance)
    # Unbounded and both sides > 64 chars: Ukkonen's doubling bands.
    # The distance is at most ``la``, so a band of half-width ``la``
    # degenerates to the full DP and the loop always terminates.
    bound = max(1, la - lb)
    while True:
        distance = _banded_distance(a, b, bound)
        if distance <= bound:
            return distance
        bound *= 2
        if bound >= la:
            return _banded_distance(a, b, la)


def levenshtein_similarity(a: str, b: str) -> float:
    """``1 - d(a, b) / max(|a|, |b|)`` — the paper's match measure."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein_distance(a, b) / longest


def levenshtein_similarity_bounded(a: str, b: str, threshold: float) -> float:
    """Similarity with early exit below ``threshold``.

    Returns the exact similarity when it is ≥ ``threshold`` and ``0.0``
    otherwise — sufficient for threshold matching and much faster on
    dissimilar strings.
    """
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    max_distance = int((1.0 - threshold) * longest)
    distance = levenshtein_distance(a, b, max_distance=max_distance)
    if distance > max_distance:
        return 0.0
    return 1.0 - distance / longest


def levenshtein_similarity_bounded_reference(
    a: str, b: str, threshold: float
) -> float:
    """:func:`levenshtein_similarity_bounded` over the reference DP kernel.

    Exists so the equivalence tests and ``benchmarks/perf_harness.py``
    can run the exact pre-optimisation hot path side by side with the
    bit-parallel one.
    """
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    max_distance = int((1.0 - threshold) * longest)
    distance = levenshtein_distance_reference(a, b, max_distance=max_distance)
    if distance > max_distance:
        return 0.0
    return 1.0 - distance / longest


def similarity_at_least(a: str, b: str, threshold: float) -> bool:
    """Does ``levenshtein_similarity(a, b) >= threshold`` hold?

    The threshold is converted into a maximum edit distance
    ``⌊(1 − t)·max(|a|, |b|)⌋`` up front, so hopeless pairs fail the
    length filter (``abs(|a| − |b|)`` alone exceeds the budget) before
    any DP work runs, and the bounded kernel abandons the rest as soon
    as the budget is provably blown.  This is the boolean fast path for
    threshold matchers that do not need the exact score.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    if a == b:
        return True
    longest = max(len(a), len(b))
    max_distance = int((1.0 - threshold) * longest)
    if abs(len(a) - len(b)) > max_distance:
        return False
    return levenshtein_distance(a, b, max_distance=max_distance) <= max_distance


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity — transposition-aware matching for short strings."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    a_flags = [False] * len(a)
    b_flags = [False] * len(b)
    matches = 0
    for i, ca in enumerate(a):
        lo = max(0, i - window)
        hi = min(len(b), i + window + 1)
        for j in range(lo, hi):
            if not b_flags[j] and b[j] == ca:
                a_flags[i] = b_flags[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, flagged in enumerate(a_flags):
        if flagged:
            while not b_flags[j]:
                j += 1
            if a[i] != b[j]:
                transpositions += 1
            j += 1
    transpositions //= 2
    m = float(matches)
    return (m / len(a) + m / len(b) + (m - transpositions) / m) / 3.0


def jaro_winkler_similarity(a: str, b: str, *, prefix_weight: float = 0.1) -> float:
    """Jaro-Winkler: Jaro boosted by the common prefix (max 4 chars)."""
    if not 0.0 <= prefix_weight <= 0.25:
        raise ValueError(f"prefix_weight must be in [0, 0.25], got {prefix_weight}")
    jaro = jaro_similarity(a, b)
    prefix = 0
    for ca, cb in zip(a[:4], b[:4]):
        if ca != cb:
            break
        prefix += 1
    return jaro + prefix * prefix_weight * (1.0 - jaro)


def jaccard_similarity(a: Iterable, b: Iterable) -> float:
    """Jaccard coefficient over two element collections."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 1.0
    union = len(sa | sb)
    return len(sa & sb) / union


def token_jaccard(a: str, b: str) -> float:
    """Jaccard over whitespace tokens."""
    return jaccard_similarity(a.split(), b.split())


def ngrams(text: str, n: int = 3, *, pad: bool = True) -> list[str]:
    """Character n-grams, optionally padded like standard trigram indexing."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if pad:
        padding = "#" * (n - 1)
        text = f"{padding}{text}{padding}"
    if len(text) < n:
        return [text] if text else []
    return [text[i:i + n] for i in range(len(text) - n + 1)]


def ngram_jaccard(a: str, b: str, n: int = 3) -> float:
    """Jaccard over character n-gram sets."""
    return jaccard_similarity(ngrams(a, n), ngrams(b, n))


def numeric_similarity(a: float, b: float, *, scale: float = 1.0) -> float:
    """``max(0, 1 - |a - b| / scale)`` for numeric attributes (e.g. price)."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return max(0.0, 1.0 - abs(a - b) / scale)


def weighted_average(scores: Sequence[float], weights: Sequence[float]) -> float:
    """Combine several attribute similarities into one match score."""
    if len(scores) != len(weights):
        raise ValueError("scores and weights must have equal length")
    if not scores:
        raise ValueError("at least one score is required")
    total_weight = sum(weights)
    if total_weight <= 0:
        raise ValueError("weights must sum to a positive value")
    return sum(s * w for s, w in zip(scores, weights)) / total_weight
