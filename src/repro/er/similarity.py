"""String and numeric similarity measures.

The paper compares entities "by computing the edit distance of their
title" with a match threshold of 0.8.  We implement Levenshtein with
the standard normalisation ``1 - d / max(|a|, |b|)`` plus the usual ER
toolbox (Jaro, Jaro-Winkler, Jaccard over token or n-gram sets, numeric
closeness) so the library is usable beyond the single paper workload.

All functions return similarities in ``[0, 1]`` where 1 means equal.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

SimilarityFunction = Callable[[str, str], float]


def levenshtein_distance(a: str, b: str, *, max_distance: int | None = None) -> int:
    """Classic dynamic-programming edit distance with two rows.

    ``max_distance`` enables early exit: once every cell of a row
    exceeds the bound the true distance cannot come back under it, and
    ``max_distance + 1`` is returned.  The matcher uses this to skip
    hopeless comparisons cheaply.
    """
    if a == b:
        return 0
    # Ensure b is the shorter string to minimise the row size.
    if len(b) > len(a):
        a, b = b, a
    if not b:
        if max_distance is not None and len(a) > max_distance:
            return max_distance + 1
        return len(a)
    if max_distance is not None and len(a) - len(b) > max_distance:
        return max_distance + 1

    previous = list(range(len(b) + 1))
    current = [0] * (len(b) + 1)
    for i, ca in enumerate(a, start=1):
        current[0] = i
        best = current[0]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current[j] = min(
                previous[j] + 1,      # deletion
                current[j - 1] + 1,   # insertion
                previous[j - 1] + cost,  # substitution
            )
            if current[j] < best:
                best = current[j]
        if max_distance is not None and best > max_distance:
            return max_distance + 1
        previous, current = current, previous
    return previous[len(b)]


def levenshtein_similarity(a: str, b: str) -> float:
    """``1 - d(a, b) / max(|a|, |b|)`` — the paper's match measure."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein_distance(a, b) / longest


def levenshtein_similarity_bounded(a: str, b: str, threshold: float) -> float:
    """Similarity with early exit below ``threshold``.

    Returns the exact similarity when it is ≥ ``threshold`` and ``0.0``
    otherwise — sufficient for threshold matching and much faster on
    dissimilar strings.
    """
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    max_distance = int((1.0 - threshold) * longest)
    distance = levenshtein_distance(a, b, max_distance=max_distance)
    if distance > max_distance:
        return 0.0
    return 1.0 - distance / longest


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity — transposition-aware matching for short strings."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    a_flags = [False] * len(a)
    b_flags = [False] * len(b)
    matches = 0
    for i, ca in enumerate(a):
        lo = max(0, i - window)
        hi = min(len(b), i + window + 1)
        for j in range(lo, hi):
            if not b_flags[j] and b[j] == ca:
                a_flags[i] = b_flags[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, flagged in enumerate(a_flags):
        if flagged:
            while not b_flags[j]:
                j += 1
            if a[i] != b[j]:
                transpositions += 1
            j += 1
    transpositions //= 2
    m = float(matches)
    return (m / len(a) + m / len(b) + (m - transpositions) / m) / 3.0


def jaro_winkler_similarity(a: str, b: str, *, prefix_weight: float = 0.1) -> float:
    """Jaro-Winkler: Jaro boosted by the common prefix (max 4 chars)."""
    if not 0.0 <= prefix_weight <= 0.25:
        raise ValueError(f"prefix_weight must be in [0, 0.25], got {prefix_weight}")
    jaro = jaro_similarity(a, b)
    prefix = 0
    for ca, cb in zip(a[:4], b[:4]):
        if ca != cb:
            break
        prefix += 1
    return jaro + prefix * prefix_weight * (1.0 - jaro)


def jaccard_similarity(a: Iterable, b: Iterable) -> float:
    """Jaccard coefficient over two element collections."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 1.0
    union = len(sa | sb)
    return len(sa & sb) / union


def token_jaccard(a: str, b: str) -> float:
    """Jaccard over whitespace tokens."""
    return jaccard_similarity(a.split(), b.split())


def ngrams(text: str, n: int = 3, *, pad: bool = True) -> list[str]:
    """Character n-grams, optionally padded like standard trigram indexing."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if pad:
        padding = "#" * (n - 1)
        text = f"{padding}{text}{padding}"
    if len(text) < n:
        return [text] if text else []
    return [text[i:i + n] for i in range(len(text) - n + 1)]


def ngram_jaccard(a: str, b: str, n: int = 3) -> float:
    """Jaccard over character n-gram sets."""
    return jaccard_similarity(ngrams(a, n), ngrams(b, n))


def numeric_similarity(a: float, b: float, *, scale: float = 1.0) -> float:
    """``max(0, 1 - |a - b| / scale)`` for numeric attributes (e.g. price)."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return max(0.0, 1.0 - abs(a - b) / scale)


def weighted_average(scores: Sequence[float], weights: Sequence[float]) -> float:
    """Combine several attribute similarities into one match score."""
    if len(scores) != len(weights):
        raise ValueError("scores and weights must have equal length")
    if not scores:
        raise ValueError("at least one score is required")
    total_weight = sum(weights)
    if total_weight <= 0:
        raise ValueError("weights must sum to a positive value")
    return sum(s * w for s, w in zip(scores, weights)) / total_weight
