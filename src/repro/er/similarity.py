"""String and numeric similarity measures.

The paper compares entities "by computing the edit distance of their
title" with a match threshold of 0.8.  We implement Levenshtein with
the standard normalisation ``1 - d / max(|a|, |b|)`` plus the usual ER
toolbox (Jaro, Jaro-Winkler, Jaccard over token or n-gram sets, numeric
closeness) so the library is usable beyond the single paper workload.

Edit distance is the per-pair hot path of the whole system, so
:func:`levenshtein_distance` dispatches to Myers' bit-parallel kernel
(shorter string ≤ 64 chars — the common ER case) or a banded DP, with
Ukkonen-style ``max_distance`` early exits throughout; the classic
two-row DP survives as :func:`levenshtein_distance_reference`, the
oracle the property tests and ``benchmarks/perf_harness.py`` measure
against.  :func:`similarity_at_least` is the boolean threshold fast
path (length filter before any DP).

All functions return similarities in ``[0, 1]`` where 1 means equal.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

SimilarityFunction = Callable[[str, str], float]


def levenshtein_distance_reference(
    a: str, b: str, *, max_distance: int | None = None
) -> int:
    """Classic dynamic-programming edit distance with two rows.

    This is the O(n·m) reference implementation the bit-parallel and
    banded kernels are verified against (and the "before" measurement
    of ``benchmarks/perf_harness.py``).  ``max_distance`` enables early
    exit: once every cell of a row exceeds the bound the true distance
    cannot come back under it, and ``max_distance + 1`` is returned.
    """
    if a == b:
        return 0
    # Ensure b is the shorter string to minimise the row size.
    if len(b) > len(a):
        a, b = b, a
    if not b:
        if max_distance is not None and len(a) > max_distance:
            return max_distance + 1
        return len(a)
    if max_distance is not None and len(a) - len(b) > max_distance:
        return max_distance + 1

    previous = list(range(len(b) + 1))
    current = [0] * (len(b) + 1)
    for i, ca in enumerate(a, start=1):
        current[0] = i
        best = current[0]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current[j] = min(
                previous[j] + 1,      # deletion
                current[j - 1] + 1,   # insertion
                previous[j - 1] + cost,  # substitution
            )
            if current[j] < best:
                best = current[j]
        if max_distance is not None and best > max_distance:
            return max_distance + 1
        previous, current = current, previous
    return previous[len(b)]


def _myers_distance(pattern: str, text: str, max_distance: int | None) -> int:
    """Myers' bit-parallel edit distance — O(|text|) word operations.

    ``pattern`` must be the shorter string and at most 64 characters;
    the whole DP column lives in the bits of two machine words (VP/VN,
    the positive/negative vertical deltas).  The running ``score`` is
    the value of the column's last cell; the final distance can drop by
    at most one per remaining text character, which gives the Ukkonen
    early exit ``score - remaining > max_distance``.
    """
    m = len(pattern)
    peq: dict[str, int] = {}
    bit = 1
    for ch in pattern:
        peq[ch] = peq.get(ch, 0) | bit
        bit <<= 1
    mask = (1 << m) - 1
    last = 1 << (m - 1)
    vp = mask
    vn = 0
    score = m
    get = peq.get
    if max_distance is None:
        for ch in text:
            eq = get(ch, 0)
            xv = eq | vn
            xh = (((eq & vp) + vp) ^ vp) | eq
            hp = vn | ~(xh | vp)
            hn = vp & xh
            if hp & last:
                score += 1
            elif hn & last:
                score -= 1
            hp = ((hp << 1) | 1) & mask
            hn = (hn << 1) & mask
            vp = (hn | ~(xv | hp)) & mask
            vn = hp & xv
        return score
    remaining = len(text)
    for ch in text:
        eq = get(ch, 0)
        xv = eq | vn
        xh = (((eq & vp) + vp) ^ vp) | eq
        hp = vn | ~(xh | vp)
        hn = vp & xh
        if hp & last:
            score += 1
        elif hn & last:
            score -= 1
        remaining -= 1
        if score - remaining > max_distance:
            return max_distance + 1
        hp = ((hp << 1) | 1) & mask
        hn = (hn << 1) & mask
        vp = (hn | ~(xv | hp)) & mask
        vn = hp & xv
    return score


MyersMasks = tuple[dict[str, int], int, int, int]


def myers_masks(pattern: str) -> MyersMasks:
    """Pre-packed bitmasks for running Myers' kernel against ``pattern``.

    Returns ``(peq, mask, last, m)`` — the per-character equality masks,
    the ``m``-bit column mask, the top-bit probe, and ``len(pattern)``.
    Building these is O(|pattern|) dict work and dominates the kernel on
    short strings, so batched scoring packs them once per *distinct*
    string and reuses them across every pair sharing that pattern
    (:mod:`repro.er.batch_kernel`).  ``pattern`` must be non-empty and
    at most 64 characters, same as :func:`_myers_distance`.
    """
    m = len(pattern)
    peq: dict[str, int] = {}
    bit = 1
    for ch in pattern:
        peq[ch] = peq.get(ch, 0) | bit
        bit <<= 1
    return peq, (1 << m) - 1, 1 << (m - 1), m


def myers_distance_masks(masks: MyersMasks, text: str, max_distance: int | None) -> int:
    """:func:`_myers_distance` over masks prepacked by :func:`myers_masks`.

    Identical loop, identical results — the only difference is that the
    per-call ``peq`` construction has been hoisted out so a batch of
    pairs sharing one pattern pays it once.
    """
    peq, mask, last, m = masks
    vp = mask
    vn = 0
    score = m
    get = peq.get
    if max_distance is None:
        for ch in text:
            eq = get(ch, 0)
            xv = eq | vn
            xh = (((eq & vp) + vp) ^ vp) | eq
            hp = vn | ~(xh | vp)
            hn = vp & xh
            if hp & last:
                score += 1
            elif hn & last:
                score -= 1
            hp = ((hp << 1) | 1) & mask
            hn = (hn << 1) & mask
            vp = (hn | ~(xv | hp)) & mask
            vn = hp & xv
        return score
    remaining = len(text)
    for ch in text:
        eq = get(ch, 0)
        xv = eq | vn
        xh = (((eq & vp) + vp) ^ vp) | eq
        hp = vn | ~(xh | vp)
        hn = vp & xh
        if hp & last:
            score += 1
        elif hn & last:
            score -= 1
        remaining -= 1
        if score - remaining > max_distance:
            return max_distance + 1
        hp = ((hp << 1) | 1) & mask
        hn = (hn << 1) & mask
        vp = (hn | ~(xv | hp)) & mask
        vn = hp & xv
    return score


#: Sentinel code point for padded text-matrix cells in the batched
#: kernel.  Real code points stop at 0x10FFFF, so this value can never
#: collide with a pattern character and its equality mask is always 0.
_BATCH_PAD = 0x1FFFFF

#: Bits reserved for the code point in the combined ``lane | char``
#: lookup keys of the batched kernel (0x10FFFF < 2**21).
_BATCH_CHAR_BITS = 21


def myers_mask_table(pattern: str) -> tuple[list[int], list[int]]:
    """:func:`myers_masks`'s ``peq`` as parallel sorted arrays.

    Returns ``(code_points, masks)`` with ``code_points`` strictly
    ascending — the layout :func:`myers_distance_batch` needs to resolve
    per-character equality masks with one vectorized binary search
    instead of a per-character dict probe.  Same contract as
    :func:`myers_masks`: ``pattern`` non-empty, at most 64 characters.
    """
    peq: dict[int, int] = {}
    bit = 1
    for ch in pattern:
        code = ord(ch)
        peq[code] = peq.get(code, 0) | bit
        bit <<= 1
    codes = sorted(peq)
    return codes, [peq[code] for code in codes]


def myers_distance_batch(np, patterns, texts, max_distances):
    """Myers' recurrence over many (pattern, text) lanes at once.

    ``patterns[k]``/``texts[k]``/``max_distances[k]`` describe lane
    ``k``; every pattern must be non-empty and at most 64 characters
    (the :func:`_myers_distance` contract), and every bound must be
    ``>= 0``.  Returns an ``int64`` array where lane ``k`` holds exactly
    what ``_myers_distance(patterns[k], texts[k], max_distances[k])``
    returns — the exact distance, or ``max_distances[k] + 1`` once the
    bound is provably exceeded.

    The whole batch advances one text position per step: each lane's
    DP column lives in one ``uint64`` element of the VP/VN arrays, so a
    step is a fixed number of vectorized word operations regardless of
    lane count.  Wrapping ``uint64`` addition is safe here for the same
    reason Myers' C formulation is: the recurrence only ever reads bits
    below each lane's own column mask, and a carry out of bit 63 can
    never influence those.  Mixed pattern lengths share one batch —
    the column mask, top-bit probe and initial score are per-lane
    arrays.  Per-lane bookkeeping handles the ragged shapes:

    * *equality masks* come from one combined table keyed by
      ``(lane << 21) | code_point`` (patterns deduplicated via
      :func:`myers_mask_table`), resolved for the whole padded text
      matrix with a single ``searchsorted``; padding cells use a
      sentinel above 0x10FFFF so their mask is 0,
    * a lane stops consuming once its text is exhausted (its score is
      frozen by the update mask) and dies early when the Ukkonen bound
      ``score - remaining > max_distance`` trips, vector-wide via the
      per-lane alive mask; the loop ends at the last live lane.

    ``max_distances[k] >= len(texts[k])`` disables lane ``k``'s early
    exit entirely (the distance can never exceed the longer side), so
    passing the text length is the "unbounded" configuration.
    """
    lanes = len(patterns)
    if lanes == 0:
        return np.empty(0, dtype=np.int64)
    # Lanes usually repeat a much smaller set of distinct strings (the
    # same block members pair up against each other), so every O(chars)
    # cost — mask tables, code-point decoding — is paid per *distinct*
    # pattern/text and broadcast to lanes by integer indexing.
    pattern_of: dict[str, int] = {}
    lane_pat = [
        pattern_of.setdefault(p, len(pattern_of)) for p in patterns
    ]
    text_of: dict[str, int] = {}
    lane_text = [text_of.setdefault(t, len(text_of)) for t in texts]
    lane_pat_arr = np.fromiter(lane_pat, dtype=np.int64, count=lanes)
    lane_text_arr = np.fromiter(lane_text, dtype=np.int64, count=lanes)
    pat_lengths = np.fromiter(
        (len(p) for p in pattern_of), dtype=np.int64, count=len(pattern_of)
    )
    text_lengths = np.fromiter(
        (len(t) for t in text_of), dtype=np.int64, count=len(text_of)
    )
    m = pat_lengths[lane_pat_arr]
    lengths = text_lengths[lane_text_arr]
    budgets = np.fromiter(max_distances, dtype=np.int64, count=lanes)

    # Combined equality-mask table keyed ``(pattern_id << 21) | code``,
    # sorted by construction (pattern ids ascending in insertion order,
    # code points ascending within a pattern).
    key_parts: list[int] = []
    mask_parts: list[int] = []
    for pid, pattern in enumerate(pattern_of):
        codes, masks = myers_mask_table(pattern)
        base = pid << _BATCH_CHAR_BITS
        key_parts.extend(base | code for code in codes)
        mask_parts.extend(masks)
    table_keys = np.fromiter(key_parts, dtype=np.int64, count=len(key_parts))
    table_masks = np.fromiter(mask_parts, dtype=np.uint64, count=len(mask_parts))

    # Padded code-point matrix over the *distinct* texts, then one
    # gather + searchsorted pass resolves the whole lanes × lmax
    # equality-mask matrix.
    lmax = int(lengths.max())
    if lmax == 0:
        return m.copy()  # every text empty: distance == pattern length
    tmat = np.full((len(text_of), lmax), _BATCH_PAD, dtype=np.int64)
    all_codes = np.frombuffer(
        "".join(text_of).encode("utf-32-le"), dtype="<u4"
    ).astype(np.int64)
    offset = 0
    for tid, n in enumerate(text_lengths.tolist()):
        tmat[tid, :n] = all_codes[offset:offset + n]
        offset += n
    keys = (lane_pat_arr << _BATCH_CHAR_BITS)[:, None] | tmat[lane_text_arr]
    idx = np.minimum(np.searchsorted(table_keys, keys), len(table_keys) - 1)
    eq = np.where(table_keys[idx] == keys, table_masks[idx], np.uint64(0))

    # The recurrence: per-lane VP/VN words, one update per text position.
    mask = np.uint64(0xFFFFFFFFFFFFFFFF) >> (np.uint64(64) - m.astype(np.uint64))
    last_shift = (m - 1).astype(np.uint64)
    one = np.uint64(1)
    vp = mask.copy()
    vn = np.zeros(lanes, dtype=np.uint64)
    score = m.copy()
    alive = np.ones(lanes, dtype=bool)
    for t in range(lmax):
        consuming = alive & (lengths > t)
        if not consuming.any():
            break
        eqc = eq[:, t]
        xv = eqc | vn
        xh = (((eqc & vp) + vp) ^ vp) | eqc
        hp = vn | ~(xh | vp)
        hn = vp & xh
        delta = ((hp >> last_shift) & one).astype(np.int64) - (
            (hn >> last_shift) & one
        ).astype(np.int64)
        score = np.where(consuming, score + delta, score)
        # Ukkonen early exit, vector-wide: the final distance can drop
        # by at most one per remaining character.
        dead = consuming & (score - (lengths - (t + 1)) > budgets)
        if dead.any():
            score[dead] = budgets[dead] + 1
            alive &= ~dead
        hp = ((hp << one) | one) & mask
        hn = (hn << one) & mask
        vp = (hn | ~(xv | hp)) & mask
        vn = hp & xv
    return score


def _banded_distance(a: str, b: str, bound: int) -> int:
    """Edit distance restricted to a diagonal band of half-width ``bound``.

    Exact whenever the true distance is ≤ ``bound`` (cells outside the
    band cannot lie on such an alignment); returns ``bound + 1``
    otherwise.  ``b`` must be the shorter string and
    ``len(a) - len(b) <= bound``.  O(|a|·bound) instead of O(|a|·|b|).
    """
    n, m = len(a), len(b)
    big = bound + 1
    # Row 0 of the DP table, clipped to the band: D[0][j] = j.
    prev_lo = 0
    prev = list(range(min(m, bound) + 1))
    for i in range(1, n + 1):
        lo = i - bound
        if lo < 0:
            lo = 0
        hi = i + bound
        if hi > m:
            hi = m
        ca = a[i - 1]
        current = []
        best = big
        for j in range(lo, hi + 1):
            if j == 0:
                val = i if i <= bound else big
            else:
                k = j - 1 - prev_lo
                sub = prev[k] if 0 <= k < len(prev) else big
                if ca != b[j - 1]:
                    sub += 1
                dele = prev[k + 1] + 1 if 0 <= k + 1 < len(prev) else big
                ins = current[-1] + 1 if current else big
                val = sub if sub < dele else dele
                if ins < val:
                    val = ins
                if val > big:
                    val = big
            current.append(val)
            if val < best:
                best = val
        if best > bound:
            return big
        prev, prev_lo = current, lo
    return prev[m - prev_lo] if prev[m - prev_lo] <= bound else big


def levenshtein_distance(a: str, b: str, *, max_distance: int | None = None) -> int:
    """Levenshtein edit distance via the fastest applicable kernel.

    Strings whose shorter side fits in a 64-bit word use Myers' bit-
    parallel kernel (O(n·m/64) word operations); longer inputs fall back
    to a banded DP — directly banded at ``max_distance`` when a bound is
    given, with Ukkonen's doubling bands (exact, O(n·d)) otherwise.
    Semantics are identical to :func:`levenshtein_distance_reference`:
    the exact distance, or ``max_distance + 1`` as soon as the bound is
    provably exceeded.
    """
    if a == b:
        return 0
    if len(b) > len(a):
        a, b = b, a
    la, lb = len(a), len(b)
    if max_distance is not None:
        if max_distance < 0:
            return max_distance + 1
        if la - lb > max_distance:
            return max_distance + 1  # length filter: no DP needed
    if not b:
        return la
    if lb <= 64:
        return _myers_distance(b, a, max_distance)
    if max_distance is not None:
        return _banded_distance(a, b, max_distance)
    # Unbounded and both sides > 64 chars: Ukkonen's doubling bands.
    # The distance is at most ``la``, so a band of half-width ``la``
    # degenerates to the full DP and the loop always terminates.
    bound = max(1, la - lb)
    while True:
        distance = _banded_distance(a, b, bound)
        if distance <= bound:
            return distance
        bound *= 2
        if bound >= la:
            return _banded_distance(a, b, la)


def levenshtein_similarity(a: str, b: str) -> float:
    """``1 - d(a, b) / max(|a|, |b|)`` — the paper's match measure."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein_distance(a, b) / longest


def levenshtein_similarity_bounded(a: str, b: str, threshold: float) -> float:
    """Similarity with early exit below ``threshold``.

    Returns the exact similarity when it is ≥ ``threshold`` and ``0.0``
    otherwise — sufficient for threshold matching and much faster on
    dissimilar strings.
    """
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    max_distance = int((1.0 - threshold) * longest)
    distance = levenshtein_distance(a, b, max_distance=max_distance)
    if distance > max_distance:
        return 0.0
    return 1.0 - distance / longest


def levenshtein_similarity_bounded_reference(
    a: str, b: str, threshold: float
) -> float:
    """:func:`levenshtein_similarity_bounded` over the reference DP kernel.

    Exists so the equivalence tests and ``benchmarks/perf_harness.py``
    can run the exact pre-optimisation hot path side by side with the
    bit-parallel one.
    """
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    max_distance = int((1.0 - threshold) * longest)
    distance = levenshtein_distance_reference(a, b, max_distance=max_distance)
    if distance > max_distance:
        return 0.0
    return 1.0 - distance / longest


def similarity_at_least(a: str, b: str, threshold: float) -> bool:
    """Does ``levenshtein_similarity(a, b) >= threshold`` hold?

    The threshold is converted into a maximum edit distance
    ``⌊(1 − t)·max(|a|, |b|)⌋`` up front, so hopeless pairs fail the
    length filter (``abs(|a| − |b|)`` alone exceeds the budget) before
    any DP work runs, and the bounded kernel abandons the rest as soon
    as the budget is provably blown.  This is the boolean fast path for
    threshold matchers that do not need the exact score.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    if a == b:
        return True
    longest = max(len(a), len(b))
    max_distance = int((1.0 - threshold) * longest)
    if abs(len(a) - len(b)) > max_distance:
        return False
    return levenshtein_distance(a, b, max_distance=max_distance) <= max_distance


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity — transposition-aware matching for short strings."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    a_flags = [False] * len(a)
    b_flags = [False] * len(b)
    matches = 0
    for i, ca in enumerate(a):
        lo = max(0, i - window)
        hi = min(len(b), i + window + 1)
        for j in range(lo, hi):
            if not b_flags[j] and b[j] == ca:
                a_flags[i] = b_flags[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, flagged in enumerate(a_flags):
        if flagged:
            while not b_flags[j]:
                j += 1
            if a[i] != b[j]:
                transpositions += 1
            j += 1
    transpositions //= 2
    m = float(matches)
    return (m / len(a) + m / len(b) + (m - transpositions) / m) / 3.0


def jaro_winkler_similarity(a: str, b: str, *, prefix_weight: float = 0.1) -> float:
    """Jaro-Winkler: Jaro boosted by the common prefix (max 4 chars)."""
    if not 0.0 <= prefix_weight <= 0.25:
        raise ValueError(f"prefix_weight must be in [0, 0.25], got {prefix_weight}")
    jaro = jaro_similarity(a, b)
    prefix = 0
    for ca, cb in zip(a[:4], b[:4]):
        if ca != cb:
            break
        prefix += 1
    return jaro + prefix * prefix_weight * (1.0 - jaro)


def jaccard_similarity(a: Iterable, b: Iterable) -> float:
    """Jaccard coefficient over two element collections."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 1.0
    union = len(sa | sb)
    return len(sa & sb) / union


def token_jaccard(a: str, b: str) -> float:
    """Jaccard over whitespace tokens."""
    return jaccard_similarity(a.split(), b.split())


def ngrams(text: str, n: int = 3, *, pad: bool = True) -> list[str]:
    """Character n-grams, optionally padded like standard trigram indexing."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if pad:
        padding = "#" * (n - 1)
        text = f"{padding}{text}{padding}"
    if len(text) < n:
        return [text] if text else []
    return [text[i:i + n] for i in range(len(text) - n + 1)]


def ngram_jaccard(a: str, b: str, n: int = 3) -> float:
    """Jaccard over character n-gram sets."""
    return jaccard_similarity(ngrams(a, n), ngrams(b, n))


def numeric_similarity(a: float, b: float, *, scale: float = 1.0) -> float:
    """``max(0, 1 - |a - b| / scale)`` for numeric attributes (e.g. price)."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return max(0.0, 1.0 - abs(a - b) / scale)


def weighted_average(scores: Sequence[float], weights: Sequence[float]) -> float:
    """Combine several attribute similarities into one match score."""
    if len(scores) != len(weights):
        raise ValueError("scores and weights must have equal length")
    if not scores:
        raise ValueError("at least one score is required")
    total_weight = sum(weights)
    if total_weight <= 0:
        raise ValueError("weights must sum to a positive value")
    return sum(s * w for s, w in zip(scores, weights)) / total_weight
