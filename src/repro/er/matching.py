"""Pair matching: the ``match(e1, e2)`` function of the paper's pseudo-code.

A matcher decides whether two entities refer to the same real-world
object.  The paper's configuration — edit-distance similarity on the
title with threshold 0.8 — is the default.  Matchers count every
comparison they perform; those counters drive both the correctness
tests (each qualifying pair compared exactly once) and the cluster
simulation (comparisons are the dominant cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from .entity import Entity
from .similarity import levenshtein_similarity_bounded


@dataclass(frozen=True, slots=True)
class MatchPair:
    """A matched entity pair with its similarity score.

    The pair is stored in canonical order (sorted by ``qualified_id``)
    so results compare equal regardless of evaluation order.
    """

    id1: str
    id2: str
    similarity: float

    @classmethod
    def of(cls, e1: Entity, e2: Entity, similarity: float) -> "MatchPair":
        a, b = sorted((e1.qualified_id, e2.qualified_id))
        return cls(a, b, similarity)

    @property
    def ids(self) -> tuple[str, str]:
        return (self.id1, self.id2)


class MatchResult:
    """Accumulates match pairs; supports set-style comparison in tests."""

    def __init__(self, pairs: Iterable[MatchPair] = ()):
        self._pairs: dict[tuple[str, str], MatchPair] = {}
        for pair in pairs:
            self.add(pair)

    def add(self, pair: MatchPair) -> None:
        self._pairs[pair.ids] = pair

    def merge(self, other: "MatchResult") -> None:
        self._pairs.update(other._pairs)

    @property
    def pair_ids(self) -> set[tuple[str, str]]:
        return set(self._pairs)

    def __contains__(self, ids: tuple[str, str]) -> bool:
        return tuple(sorted(ids)) in self._pairs

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[MatchPair]:
        return iter(sorted(self._pairs.values(), key=lambda p: p.ids))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MatchResult):
            return NotImplemented
        return self.pair_ids == other.pair_ids

    def __repr__(self) -> str:
        return f"MatchResult({len(self)} pairs)"


class Matcher:
    """Base matcher: scores entity pairs and applies a decision rule.

    Subclasses implement :meth:`similarity`; :meth:`match` applies the
    threshold and records statistics.
    """

    def __init__(self) -> None:
        self.comparisons = 0
        self.matches_found = 0

    def reset_counters(self) -> None:
        self.comparisons = 0
        self.matches_found = 0

    def similarity(self, e1: Entity, e2: Entity) -> float:
        raise NotImplementedError

    def is_match(self, similarity: float) -> bool:
        raise NotImplementedError

    def match(self, e1: Entity, e2: Entity) -> MatchPair | None:
        """Compare a pair; return a :class:`MatchPair` if it matches."""
        self.comparisons += 1
        score = self.similarity(e1, e2)
        if self.is_match(score):
            self.matches_found += 1
            return MatchPair.of(e1, e2, score)
        return None


class ThresholdMatcher(Matcher):
    """The paper's matcher: attribute similarity ≥ threshold ⇒ match.

    Defaults replicate Section VI: edit-distance similarity on
    ``title`` with minimal similarity 0.8.
    """

    def __init__(
        self,
        attribute: str = "title",
        threshold: float = 0.8,
        similarity_fn: Callable[[str, str], float] | None = None,
    ):
        super().__init__()
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.attribute = attribute
        self.threshold = threshold
        self._similarity_fn = similarity_fn

    def similarity(self, e1: Entity, e2: Entity) -> float:
        a = str(e1.get(self.attribute) or "")
        b = str(e2.get(self.attribute) or "")
        if self._similarity_fn is not None:
            return self._similarity_fn(a, b)
        return levenshtein_similarity_bounded(a, b, self.threshold)

    def is_match(self, similarity: float) -> bool:
        return similarity >= self.threshold

    def __repr__(self) -> str:
        return (
            f"ThresholdMatcher(attribute={self.attribute!r}, "
            f"threshold={self.threshold})"
        )


class RecordingMatcher(Matcher):
    """Test double that records every compared pair and matches nothing.

    The coverage invariants ("every qualifying pair compared exactly
    once") are asserted against :attr:`compared` — a multiset of
    canonical id pairs.
    """

    def __init__(self) -> None:
        super().__init__()
        self.compared: list[tuple[str, str]] = []

    def similarity(self, e1: Entity, e2: Entity) -> float:
        return 0.0

    def is_match(self, similarity: float) -> bool:
        return False

    def match(self, e1: Entity, e2: Entity) -> MatchPair | None:
        ids = tuple(sorted((e1.qualified_id, e2.qualified_id)))
        self.compared.append(ids)  # type: ignore[arg-type]
        return super().match(e1, e2)


class AlwaysMatcher(Matcher):
    """Matches every pair with similarity 1.0 (useful for flow tests)."""

    def similarity(self, e1: Entity, e2: Entity) -> float:
        return 1.0

    def is_match(self, similarity: float) -> bool:
        return True


def brute_force_pairs(entities: Iterable[Entity]) -> set[tuple[str, str]]:
    """All distinct unordered pairs — the O(n²) reference for tests."""
    ids = [e.qualified_id for e in entities]
    pairs: set[tuple[str, str]] = set()
    for i, a in enumerate(ids):
        for b in ids[i + 1:]:
            pairs.add(tuple(sorted((a, b))))  # type: ignore[arg-type]
    return pairs


def brute_force_match(
    entities: Iterable[Entity], matcher: Matcher
) -> MatchResult:
    """Reference ER over the Cartesian product (no blocking)."""
    entity_list = list(entities)
    result = MatchResult()
    for i, e1 in enumerate(entity_list):
        for e2 in entity_list[i + 1:]:
            pair = matcher.match(e1, e2)
            if pair is not None:
                result.add(pair)
    return result
