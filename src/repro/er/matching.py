"""Pair matching: the ``match(e1, e2)`` function of the paper's pseudo-code.

A matcher decides whether two entities refer to the same real-world
object.  The paper's configuration — edit-distance similarity on the
title with threshold 0.8 — is the default.  Matchers count every
comparison they perform; those counters drive both the correctness
tests (each qualifying pair compared exactly once) and the cluster
simulation (comparisons are the dominant cost).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, NamedTuple

from .batch_kernel import matching_positions, score_pair_batch
from .entity import Entity
from .similarity import levenshtein_similarity_bounded


@dataclass(frozen=True, slots=True)
class MatchPair:
    """A matched entity pair with its similarity score.

    The pair is stored in canonical order (sorted by ``qualified_id``)
    so results compare equal regardless of evaluation order.
    """

    id1: str
    id2: str
    similarity: float

    @classmethod
    def of(cls, e1: Entity, e2: Entity, similarity: float) -> "MatchPair":
        a, b = sorted((e1.qualified_id, e2.qualified_id))
        return cls(a, b, similarity)

    @property
    def ids(self) -> tuple[str, str]:
        return (self.id1, self.id2)


class MatchResult:
    """Accumulates match pairs; supports set-style comparison in tests."""

    def __init__(self, pairs: Iterable[MatchPair] = ()):
        self._pairs: dict[tuple[str, str], MatchPair] = {}
        for pair in pairs:
            self.add(pair)

    def add(self, pair: MatchPair) -> None:
        self._pairs[pair.ids] = pair

    def merge(self, other: "MatchResult") -> None:
        self._pairs.update(other._pairs)

    @property
    def pair_ids(self) -> set[tuple[str, str]]:
        return set(self._pairs)

    def __contains__(self, ids: tuple[str, str]) -> bool:
        return tuple(sorted(ids)) in self._pairs

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[MatchPair]:
        return iter(sorted(self._pairs.values(), key=lambda p: p.ids))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MatchResult):
            return NotImplemented
        return self.pair_ids == other.pair_ids

    def __repr__(self) -> str:
        return f"MatchResult({len(self)} pairs)"


class Matcher:
    """Base matcher: scores entity pairs and applies a decision rule.

    Subclasses implement :meth:`similarity`; :meth:`match` applies the
    threshold and records statistics.

    The reduce hot loops call the matcher through the *prepared*
    protocol: :meth:`prepare` runs once per entity per reduce group and
    :meth:`match_prepared` once per pair.  The base implementations are
    the identity (``prepare`` returns the entity, ``match_prepared``
    delegates to :meth:`match`), so custom matchers keep their exact
    per-pair behaviour; matchers with an expensive per-pair setup
    (attribute extraction, normalisation) override both to hoist that
    work out of the O(pairs) loop.
    """

    def __init__(self) -> None:
        self.comparisons = 0
        self.matches_found = 0

    def reset_counters(self) -> None:
        self.comparisons = 0
        self.matches_found = 0

    def similarity(self, e1: Entity, e2: Entity) -> float:
        raise NotImplementedError

    def is_match(self, similarity: float) -> bool:
        raise NotImplementedError

    def match(self, e1: Entity, e2: Entity) -> MatchPair | None:
        """Compare a pair; return a :class:`MatchPair` if it matches."""
        self.comparisons += 1
        score = self.similarity(e1, e2)
        if self.is_match(score):
            self.matches_found += 1
            return MatchPair.of(e1, e2, score)
        return None

    # -- prepared protocol (the reduce-group hot path) ----------------------

    def prepare(self, entity: Entity) -> Any:
        """Per-entity preprocessing, run once per reduce group."""
        return entity

    def match_prepared(self, p1: Any, p2: Any) -> MatchPair | None:
        """Compare two :meth:`prepare` outputs; same contract as :meth:`match`."""
        return self.match(p1, p2)

    def match_batch(self, prepared: list, pairs) -> list[MatchPair]:
        """Compare a whole batch of prepared entities; return the matches.

        ``pairs`` is a pair spec from :mod:`repro.er.batch_kernel`
        (:class:`~repro.er.batch_kernel.TrianglePairs` and friends)
        yielding ``(i, j)`` index pairs into ``prepared``.  The base
        implementation is the *identity* batching: it calls
        :meth:`match_prepared` once per pair, in spec order — so custom
        matchers keep their exact per-pair behaviour, comparison order,
        and counters when a batched reduce loop hands them a group.
        Matchers with a vectorizable kernel override this to score the
        batch in one pass (:class:`ThresholdMatcher` does).
        """
        out = []
        match_prepared = self.match_prepared
        for i, j in pairs.iter_pairs():
            pair = match_prepared(prepared[i], prepared[j])
            if pair is not None:
                out.append(pair)
        return out


class _PreparedEntity(NamedTuple):
    """ThresholdMatcher's per-entity preprocessing: id + interned text.

    Interning the extracted attribute makes the memo-cache tuple keys
    compare by pointer in the common case and collapses the many
    duplicate values real blocking produces into one string object.
    """

    qid: str
    text: str


class ThresholdMatcher(Matcher):
    """The paper's matcher: attribute similarity ≥ threshold ⇒ match.

    Defaults replicate Section VI: edit-distance similarity on
    ``title`` with minimal similarity 0.8.

    With the default kernel the matcher takes the prepared fast path:
    the compare attribute is extracted, stringified and interned once
    per reduce group instead of once per pair, and verdicts for
    repeated value pairs are memoised in an LRU keyed on the interned
    string pair (``memoize`` entries; 0 disables).  Both paths are
    byte-identical in matches and counters — ``prepared=False`` forces
    the legacy per-pair path, which ``benchmarks/perf_harness.py`` uses
    as its "before" measurement.  A custom ``similarity_fn`` or a
    subclass override of ``similarity``/``is_match``/``match`` also
    disables the fast path, preserving the override's semantics.

    ``cache_hits``/``cache_misses`` count only the comparisons that
    reach the cache+kernel stage; identical values (interned pointer
    check) and pairs rejected by the length filter bypass both.
    """

    def __init__(
        self,
        attribute: str = "title",
        threshold: float = 0.8,
        similarity_fn: Callable[[str, str], float] | None = None,
        *,
        prepared: bool = True,
        memoize: int = 4096,
    ):
        super().__init__()
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        if memoize < 0:
            raise ValueError(f"memoize must be >= 0, got {memoize}")
        self.attribute = attribute
        self.threshold = threshold
        self._similarity_fn = similarity_fn
        self._prepared_enabled = prepared
        self._memoize = memoize
        self._cache: dict[tuple[str, str], float] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def reset_counters(self) -> None:
        super().reset_counters()
        self.cache_hits = 0
        self.cache_misses = 0

    def similarity(self, e1: Entity, e2: Entity) -> float:
        a = str(e1.get(self.attribute) or "")
        b = str(e2.get(self.attribute) or "")
        if self._similarity_fn is not None:
            return self._similarity_fn(a, b)
        return levenshtein_similarity_bounded(a, b, self.threshold)

    def is_match(self, similarity: float) -> bool:
        return similarity >= self.threshold

    # -- prepared fast path --------------------------------------------------

    def prepare(self, entity: Entity) -> Any:
        cls = type(self)
        if (
            not self._prepared_enabled
            or self._similarity_fn is not None
            or cls.similarity is not ThresholdMatcher.similarity
            or cls.is_match is not ThresholdMatcher.is_match
            or cls.match is not Matcher.match
        ):
            return entity
        return _PreparedEntity(
            entity.qualified_id, sys.intern(str(entity.get(self.attribute) or ""))
        )

    def match_prepared(self, p1: Any, p2: Any) -> MatchPair | None:
        if type(p1) is not _PreparedEntity:
            return self.match(p1, p2)
        self.comparisons += 1
        a = p1.text
        b = p2.text
        threshold = self.threshold
        if a is b:
            # Interning makes equal values pointer-identical — the
            # common case in skewed blocks costs one identity check.
            score = 1.0
        else:
            la = len(a)
            lb = len(b)
            if la >= lb:
                longest, diff = la, la - lb
            else:
                longest, diff = lb, lb - la
            if diff > int((1.0 - threshold) * longest):
                # Length filter: the edit-distance budget is already
                # blown, so skip both the cache and the kernel (same
                # 0.0 the bounded kernel would return).
                score = 0.0
            else:
                key = (a, b) if a <= b else (b, a)
                cache = self._cache
                score = cache.pop(key, None)
                if score is None:
                    self.cache_misses += 1
                    score = levenshtein_similarity_bounded(a, b, threshold)
                else:
                    self.cache_hits += 1
                if self._memoize:
                    if len(cache) >= self._memoize:
                        # Best-effort eviction of the least-recently-used
                        # entry.  The thread backend shares this matcher
                        # across workers, so a concurrent insert/evict may
                        # beat us to it — cached scores are pure values,
                        # so losing the race only costs a recompute,
                        # never correctness.
                        try:
                            cache.pop(next(iter(cache)), None)
                        except (StopIteration, RuntimeError):
                            pass
                    cache[key] = score
        if score >= threshold:
            self.matches_found += 1
            q1 = p1.qid
            q2 = p2.qid
            if q2 < q1:
                q1, q2 = q2, q1
            return MatchPair(q1, q2, score)
        return None

    def match_batch(self, prepared: list, pairs) -> list[MatchPair]:
        """Score a whole reduce group's pairs through the batch kernel.

        Active only on the prepared fast path (interned
        ``_PreparedEntity`` inputs); any other input — a custom
        similarity function, subclass overrides, ``prepared=False`` —
        falls back to the base per-pair batching, preserving exact
        semantics.  The kernel scores are byte-identical to
        :meth:`match_prepared`'s (same short-circuits, same bounded
        kernels), matches are emitted in spec pair order with the same
        canonical id ordering, and ``comparisons``/``matches_found``
        advance by the same totals.  ``cache_hits``/``cache_misses``
        also advance by exactly the scalar path's increments: the batch
        computes each distinct value pair once, then replays the scalar
        pop/evict/reinsert LRU discipline per occurrence in spec pair
        order, so the residual cache — contents *and* recency order —
        is byte-identical too, and later groups see the same hit/miss
        stream as a scalar run.
        """
        if pairs.count == 0:
            return []
        if not prepared or type(prepared[0]) is not _PreparedEntity:
            return super().match_batch(prepared, pairs)
        scores, hits, misses = score_pair_batch(
            [p.text for p in prepared],
            pairs,
            self.threshold,
            cache=self._cache,
            memoize=self._memoize,
        )
        self.comparisons += pairs.count
        self.cache_hits += hits
        self.cache_misses += misses
        out = []
        pair_at = pairs.pair_at
        for k in matching_positions(scores, self.threshold):
            i, j = pair_at(k)
            q1 = prepared[i].qid
            q2 = prepared[j].qid
            if q2 < q1:
                q1, q2 = q2, q1
            out.append(MatchPair(q1, q2, float(scores[k])))
        self.matches_found += len(out)
        return out

    def __getstate__(self) -> dict[str, Any]:
        # The memo cache is a pure accelerator: never ship it to worker
        # processes (it can hold thousands of entries, the parallel
        # backend pickles the job once per task submission, and workers
        # rebuild their own caches as they match).
        state = self.__dict__.copy()
        state["_cache"] = {}
        return state

    def __repr__(self) -> str:
        return (
            f"ThresholdMatcher(attribute={self.attribute!r}, "
            f"threshold={self.threshold})"
        )


class RecordingMatcher(Matcher):
    """Test double that records every compared pair and matches nothing.

    The coverage invariants ("every qualifying pair compared exactly
    once") are asserted against :attr:`compared` — a multiset of
    canonical id pairs.
    """

    def __init__(self) -> None:
        super().__init__()
        self.compared: list[tuple[str, str]] = []

    def similarity(self, e1: Entity, e2: Entity) -> float:
        return 0.0

    def is_match(self, similarity: float) -> bool:
        return False

    def match(self, e1: Entity, e2: Entity) -> MatchPair | None:
        ids = tuple(sorted((e1.qualified_id, e2.qualified_id)))
        self.compared.append(ids)  # type: ignore[arg-type]
        return super().match(e1, e2)


class AlwaysMatcher(Matcher):
    """Matches every pair with similarity 1.0 (useful for flow tests)."""

    def similarity(self, e1: Entity, e2: Entity) -> float:
        return 1.0

    def is_match(self, similarity: float) -> bool:
        return True


def brute_force_pairs(entities: Iterable[Entity]) -> set[tuple[str, str]]:
    """All distinct unordered pairs — the O(n²) reference for tests."""
    ids = [e.qualified_id for e in entities]
    pairs: set[tuple[str, str]] = set()
    for i, a in enumerate(ids):
        for b in ids[i + 1:]:
            pairs.add(tuple(sorted((a, b))))  # type: ignore[arg-type]
    return pairs


def brute_force_match(
    entities: Iterable[Entity], matcher: Matcher
) -> MatchResult:
    """Reference ER over the Cartesian product (no blocking)."""
    entity_list = list(entities)
    result = MatchResult()
    for i, e1 in enumerate(entity_list):
        for e2 in entity_list[i + 1:]:
            pair = matcher.match(e1, e2)
            if pair is not None:
                result.add(pair)
    return result
