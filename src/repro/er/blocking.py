"""Blocking functions.

A blocking key function maps an entity to the key of the block it
belongs to; only entities sharing a block are compared (Section I).
The paper's default blocking is the first three letters of the title;
its robustness experiment replaces that by a synthetic exponential
distribution (Section VI-A), and the Cartesian-product fallback for
entities without a key uses a constant key (Section III / Appendix I).
"""

from __future__ import annotations

import unicodedata
from abc import ABC, abstractmethod
from typing import Callable, Hashable, Iterable, Sequence

from .entity import Entity

BlockKey = Hashable

#: The constant key "⊥" of Section III used for Cartesian-product matching.
CONSTANT_BLOCK_KEY = "⊥"


class BlockingFunction(ABC):
    """Maps entities to blocking keys.

    Implementations must be deterministic: the workflow applies the
    function in MR Job 1 and relies on Job 2 seeing identical keys.
    """

    @abstractmethod
    def key_for(self, entity: Entity) -> BlockKey | None:
        """The entity's blocking key, or ``None`` if it has no valid key."""

    def __call__(self, entity: Entity) -> BlockKey | None:
        return self.key_for(entity)

    def partition_entities(
        self, entities: Iterable[Entity]
    ) -> dict[BlockKey, list[Entity]]:
        """Group entities into blocks (reference implementation for tests)."""
        blocks: dict[BlockKey, list[Entity]] = {}
        for entity in entities:
            key = self.key_for(entity)
            if key is None:
                continue
            blocks.setdefault(key, []).append(entity)
        return blocks


class PrefixBlocking(BlockingFunction):
    """Block on the first ``length`` characters of an attribute.

    This is the paper's default for both datasets ("the first three
    letters of the product or publication title").  Values are lowered
    and accent-stripped so that case and diacritics do not fragment
    blocks; whitespace is collapsed.
    """

    def __init__(self, attribute: str = "title", length: int = 3):
        if length <= 0:
            raise ValueError(f"prefix length must be positive, got {length}")
        self.attribute = attribute
        self.length = length

    def key_for(self, entity: Entity) -> BlockKey | None:
        value = entity.get(self.attribute)
        if value is None:
            return None
        normalized = normalize_string(str(value))
        if not normalized:
            return None
        return normalized[: self.length]

    def __repr__(self) -> str:
        return f"PrefixBlocking(attribute={self.attribute!r}, length={self.length})"


class AttributeBlocking(BlockingFunction):
    """Block on the (normalized) full value of an attribute.

    The introduction's example: product entities partitioned by
    manufacturer.
    """

    def __init__(self, attribute: str, *, normalize: bool = True):
        self.attribute = attribute
        self.normalize = normalize

    def key_for(self, entity: Entity) -> BlockKey | None:
        value = entity.get(self.attribute)
        if value is None:
            return None
        text = str(value)
        if self.normalize:
            text = normalize_string(text)
        return text or None

    def __repr__(self) -> str:
        return f"AttributeBlocking(attribute={self.attribute!r})"


class ConstantBlocking(BlockingFunction):
    """Every entity lands in one block — the Cartesian product fallback."""

    def __init__(self, key: BlockKey = CONSTANT_BLOCK_KEY):
        self.key = key

    def key_for(self, entity: Entity) -> BlockKey | None:
        return self.key

    def __repr__(self) -> str:
        return f"ConstantBlocking(key={self.key!r})"


class CallableBlocking(BlockingFunction):
    """Adapter wrapping a plain function, e.g. a lambda in tests."""

    def __init__(self, fn: Callable[[Entity], BlockKey | None], name: str = "callable"):
        self._fn = fn
        self.name = name

    def key_for(self, entity: Entity) -> BlockKey | None:
        return self._fn(entity)

    def __repr__(self) -> str:
        return f"CallableBlocking({self.name})"


class CompositeBlocking(BlockingFunction):
    """Concatenates several blocking functions' keys into a tuple key.

    Refining a blocking function (e.g. manufacturer + first title
    letter) is the manual skew-mitigation the paper argues against in
    Section III; we provide it so the comparison can be made.
    """

    def __init__(self, parts: Sequence[BlockingFunction]):
        if not parts:
            raise ValueError("CompositeBlocking needs at least one part")
        self.parts = list(parts)

    def key_for(self, entity: Entity) -> BlockKey | None:
        keys = []
        for part in self.parts:
            key = part.key_for(entity)
            if key is None:
                return None
            keys.append(key)
        return tuple(keys)

    def __repr__(self) -> str:
        return f"CompositeBlocking({self.parts!r})"


class MultiPassBlocking:
    """Assigns *multiple* blocking keys per entity (paper's future work).

    Not a :class:`BlockingFunction` — the interface differs (one entity
    may yield several keys).  The workflow layer deduplicates pairs that
    co-occur in more than one block.
    """

    def __init__(self, passes: Sequence[BlockingFunction]):
        if not passes:
            raise ValueError("MultiPassBlocking needs at least one pass")
        self.passes = list(passes)

    def keys_for(self, entity: Entity) -> list[BlockKey]:
        keys: list[BlockKey] = []
        seen: set[BlockKey] = set()
        for index, blocking in enumerate(self.passes):
            key = blocking.key_for(entity)
            if key is None:
                continue
            tagged = (index, key)
            if tagged not in seen:
                seen.add(tagged)
                keys.append(tagged)
        return keys


def normalize_string(text: str) -> str:
    """Lowercase, strip accents, collapse whitespace."""
    decomposed = unicodedata.normalize("NFKD", text)
    stripped = "".join(ch for ch in decomposed if not unicodedata.combining(ch))
    return " ".join(stripped.lower().split())
