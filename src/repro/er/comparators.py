"""Multi-attribute match rules.

The paper evaluates a single-attribute matcher (title edit distance),
but real ER configurations combine several similarity measures per pair
(the "multiple similarity measures" of its introduction).  This module
provides the standard weighted-combination matcher plus a rule-based
one, both plugging into every workflow unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, NamedTuple, Sequence

from .entity import Entity
from .matching import Matcher, MatchPair
from .similarity import levenshtein_similarity, numeric_similarity

SimilarityFn = Callable[[object, object], float]


@dataclass(frozen=True, slots=True)
class AttributeRule:
    """How to compare one attribute.

    ``missing_score`` is used when either side lacks the attribute
    (``None``); the conventional neutral choice is 0.5, pessimistic is
    0.0.
    """

    attribute: str
    similarity: SimilarityFn
    weight: float = 1.0
    missing_score: float = 0.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if not 0.0 <= self.missing_score <= 1.0:
            raise ValueError("missing_score must be in [0, 1]")

    def score(self, e1: Entity, e2: Entity) -> float:
        a, b = e1.get(self.attribute), e2.get(self.attribute)
        if a is None or b is None:
            return self.missing_score
        return float(self.similarity(a, b))


def string_rule(attribute: str, weight: float = 1.0) -> AttributeRule:
    """Edit-distance similarity on a string attribute."""
    return AttributeRule(
        attribute,
        lambda a, b: levenshtein_similarity(str(a), str(b)),
        weight=weight,
    )


def numeric_rule(attribute: str, scale: float, weight: float = 1.0) -> AttributeRule:
    """Absolute-difference similarity on a numeric attribute."""
    return AttributeRule(
        attribute,
        lambda a, b: numeric_similarity(float(a), float(b), scale=scale),
        weight=weight,
    )


def exact_rule(attribute: str, weight: float = 1.0) -> AttributeRule:
    """1.0 on equality, 0.0 otherwise (ids, category codes)."""
    return AttributeRule(attribute, lambda a, b: 1.0 if a == b else 0.0, weight=weight)


class _PreparedRuleValues(NamedTuple):
    """WeightedMatcher's per-entity preprocessing: id + extracted values."""

    qid: str
    values: tuple


class WeightedMatcher(Matcher):
    """Weighted average of per-attribute similarities vs. a threshold.

    Example::

        matcher = WeightedMatcher(
            [string_rule("title", 3.0), numeric_rule("price", scale=50.0)],
            threshold=0.85,
        )

    Like :class:`~repro.er.matching.ThresholdMatcher`, the reduce hot
    loops extract every rule's attribute once per reduce group via
    :meth:`prepare`; per pair only the similarity functions run.
    Subclasses overriding ``similarity``/``is_match``/``match`` fall
    back to the per-pair path automatically.
    """

    def __init__(self, rules: Sequence[AttributeRule], threshold: float = 0.8):
        super().__init__()
        if not rules:
            raise ValueError("WeightedMatcher needs at least one rule")
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.rules = list(rules)
        self.threshold = threshold
        self._total_weight = sum(rule.weight for rule in self.rules)

    def similarity(self, e1: Entity, e2: Entity) -> float:
        score = sum(rule.score(e1, e2) * rule.weight for rule in self.rules)
        return score / self._total_weight

    def is_match(self, similarity: float) -> bool:
        return similarity >= self.threshold

    # -- prepared fast path --------------------------------------------------

    def prepare(self, entity: Entity) -> Any:
        cls = type(self)
        if (
            cls.similarity is not WeightedMatcher.similarity
            or cls.is_match is not WeightedMatcher.is_match
            or cls.match is not Matcher.match
        ):
            return entity
        return _PreparedRuleValues(
            entity.qualified_id,
            tuple(entity.get(rule.attribute) for rule in self.rules),
        )

    def match_prepared(self, p1: Any, p2: Any) -> MatchPair | None:
        if type(p1) is not _PreparedRuleValues:
            return self.match(p1, p2)
        self.comparisons += 1
        # Same accumulation order as `similarity` (sum starts at int 0),
        # so the combined score is bit-for-bit identical.
        score: float = 0
        for rule, a, b in zip(self.rules, p1.values, p2.values):
            if a is None or b is None:
                part = rule.missing_score
            else:
                part = float(rule.similarity(a, b))
            score += part * rule.weight
        score /= self._total_weight
        if score >= self.threshold:
            self.matches_found += 1
            q1 = p1.qid
            q2 = p2.qid
            if q2 < q1:
                q1, q2 = q2, q1
            return MatchPair(q1, q2, score)
        return None

    def __repr__(self) -> str:
        attrs = ", ".join(rule.attribute for rule in self.rules)
        return f"WeightedMatcher([{attrs}], threshold={self.threshold})"


class ConjunctiveMatcher(Matcher):
    """Every rule must individually clear its own threshold.

    ``thresholds`` maps attribute → minimum similarity; attributes
    without an entry use the default.  Conjunctions give high precision
    (all evidence must agree) at the cost of recall.
    """

    def __init__(
        self,
        rules: Sequence[AttributeRule],
        *,
        default_threshold: float = 0.8,
        thresholds: dict[str, float] | None = None,
    ):
        super().__init__()
        if not rules:
            raise ValueError("ConjunctiveMatcher needs at least one rule")
        self.rules = list(rules)
        self.default_threshold = default_threshold
        self.thresholds = dict(thresholds or {})

    def similarity(self, e1: Entity, e2: Entity) -> float:
        """The *minimum margin* over the per-rule thresholds, shifted so
        that 'all rules pass' maps to >= 0.5 and any failure to < 0.5."""
        worst = min(
            rule.score(e1, e2)
            - self.thresholds.get(rule.attribute, self.default_threshold)
            for rule in self.rules
        )
        return max(0.0, min(1.0, 0.5 + worst))

    def is_match(self, similarity: float) -> bool:
        return similarity >= 0.5
