"""The entity model.

Entities are immutable records with a unique identifier, a source tag
(for two-source matching, Appendix I of the paper) and a flat attribute
dictionary.  Immutability matters because the load-balancing strategies
*replicate* entities to multiple reduce tasks; sharing one frozen object
is both safe and memory-friendly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping


@dataclass(frozen=True, slots=True)
class Entity:
    """A single record to be resolved.

    Parameters
    ----------
    entity_id:
        Unique identifier within its source.
    attributes:
        Attribute name → value.  Values are compared by the similarity
        functions; ``None`` encodes a missing attribute.
    source:
        Source tag; ``"R"`` by default.  Two-source matching uses
        ``"R"`` and ``"S"``.
    """

    entity_id: str
    attributes: Mapping[str, Any] = field(default_factory=dict)
    source: str = "R"

    def __post_init__(self) -> None:
        # Freeze the attribute mapping so entities are hashable and safe
        # to replicate across simulated tasks.
        object.__setattr__(self, "attributes", _FrozenMapping(self.attributes))

    def get(self, attribute: str, default: Any = None) -> Any:
        return self.attributes.get(attribute, default)

    def __getitem__(self, attribute: str) -> Any:
        return self.attributes[attribute]

    def with_source(self, source: str) -> "Entity":
        return Entity(self.entity_id, dict(self.attributes), source)

    @property
    def qualified_id(self) -> str:
        """Globally unique id across sources, e.g. ``"R:p123"``."""
        return f"{self.source}:{self.entity_id}"

    def __repr__(self) -> str:
        return f"Entity({self.qualified_id})"


class _FrozenMapping(Mapping[str, Any]):
    """A hashable, read-only view over a dict."""

    __slots__ = ("_data", "_hash")

    def __init__(self, data: Mapping[str, Any]):
        self._data = dict(data)
        self._hash: int | None = None

    def __getitem__(self, key: str) -> Any:
        return self._data[key]

    def __iter__(self):
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(tuple(sorted(self._data.items(), key=lambda kv: kv[0])))
        return self._hash

    def __repr__(self) -> str:
        return f"_FrozenMapping({self._data!r})"


def make_entities(
    values: Iterable[Mapping[str, Any] | tuple[str, Mapping[str, Any]]],
    *,
    source: str = "R",
    id_attribute: str | None = None,
    id_prefix: str = "e",
) -> list[Entity]:
    """Bulk-construct entities from attribute mappings.

    Ids are taken from ``id_attribute`` when given, otherwise generated
    as ``<id_prefix><ordinal>``.
    """
    entities: list[Entity] = []
    for i, item in enumerate(values):
        if isinstance(item, tuple):
            entity_id, attributes = item
        elif id_attribute is not None:
            attributes = item
            entity_id = str(item[id_attribute])
        else:
            attributes = item
            entity_id = f"{id_prefix}{i}"
        entities.append(Entity(str(entity_id), attributes, source))
    return entities
