"""Duplicate injection with ground truth.

The synthetic generators plant duplicates implicitly; evaluating match
*quality* (precision/recall) needs explicit ground truth.  This module
takes a clean dataset and produces a corrupted copy of a chosen
fraction of records — typos, token swaps, abbreviations, missing
values — returning the gold pair set alongside.

Corruption styles mirror the error classes of real product/publication
data; each is a small composable operator.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..er.entity import Entity

Corruptor = Callable[[str, random.Random], str]


def typo(text: str, rng: random.Random) -> str:
    """Substitute one character (keyboard-noise model)."""
    if not text:
        return text
    chars = list(text)
    position = rng.randrange(len(chars))
    chars[position] = rng.choice(string.ascii_lowercase)
    return "".join(chars)


def transpose(text: str, rng: random.Random) -> str:
    """Swap two adjacent characters."""
    if len(text) < 2:
        return text
    i = rng.randrange(len(text) - 1)
    chars = list(text)
    chars[i], chars[i + 1] = chars[i + 1], chars[i]
    return "".join(chars)


def drop_character(text: str, rng: random.Random) -> str:
    if len(text) < 2:
        return text
    i = rng.randrange(len(text))
    return text[:i] + text[i + 1:]


def insert_character(text: str, rng: random.Random) -> str:
    i = rng.randrange(len(text) + 1)
    return text[:i] + rng.choice(string.ascii_lowercase) + text[i:]


def swap_tokens(text: str, rng: random.Random) -> str:
    """Swap two adjacent words (common in person/title data)."""
    tokens = text.split()
    if len(tokens) < 2:
        return text
    i = rng.randrange(len(tokens) - 1)
    tokens[i], tokens[i + 1] = tokens[i + 1], tokens[i]
    return " ".join(tokens)


def abbreviate_token(text: str, rng: random.Random) -> str:
    """Truncate one word to its first letter + period."""
    tokens = text.split()
    candidates = [i for i, t in enumerate(tokens) if len(t) > 2 and t.isalpha()]
    if not candidates:
        return text
    i = rng.choice(candidates)
    tokens[i] = tokens[i][0] + "."
    return " ".join(tokens)


def drop_token(text: str, rng: random.Random) -> str:
    tokens = text.split()
    if len(tokens) < 2:
        return text
    del tokens[rng.randrange(len(tokens))]
    return " ".join(tokens)


#: The default mix, weighted towards character-level noise so corrupted
#: copies usually stay above typical match thresholds.
DEFAULT_CORRUPTORS: tuple[tuple[Corruptor, float], ...] = (
    (typo, 3.0),
    (transpose, 2.0),
    (drop_character, 2.0),
    (insert_character, 2.0),
    (swap_tokens, 1.0),
    (abbreviate_token, 0.5),
    (drop_token, 0.5),
)


@dataclass(frozen=True, slots=True)
class CorruptionConfig:
    """How to corrupt a dataset.

    ``duplicate_fraction`` of the records get one corrupted copy each;
    every copy receives 1..``max_edits`` corruption operations on
    ``attribute``.  ``protect_prefix`` keeps the first k characters
    intact so the copy stays in its original block — set it to 0 to
    generate the "hard" duplicates that defeat single-pass prefix
    blocking (see ``examples/multipass_dedup.py``).
    """

    attribute: str = "title"
    duplicate_fraction: float = 0.2
    max_edits: int = 2
    protect_prefix: int = 3
    missing_value_rate: float = 0.0
    corruptors: tuple[tuple[Corruptor, float], ...] = DEFAULT_CORRUPTORS
    seed: int = 99

    def __post_init__(self) -> None:
        if not 0.0 <= self.duplicate_fraction <= 1.0:
            raise ValueError("duplicate_fraction must be in [0, 1]")
        if self.max_edits < 1:
            raise ValueError("max_edits must be >= 1")
        if self.protect_prefix < 0:
            raise ValueError("protect_prefix must be >= 0")
        if not 0.0 <= self.missing_value_rate <= 1.0:
            raise ValueError("missing_value_rate must be in [0, 1]")
        if not self.corruptors:
            raise ValueError("at least one corruptor is required")


@dataclass(frozen=True, slots=True)
class CorruptedDataset:
    """A corrupted dataset plus its gold standard."""

    entities: tuple[Entity, ...]
    gold_pairs: frozenset[tuple[str, str]]

    @property
    def num_duplicates(self) -> int:
        return len(self.gold_pairs)


def corrupt_dataset(
    entities: Sequence[Entity], config: CorruptionConfig = CorruptionConfig()
) -> CorruptedDataset:
    """Inject duplicates and return (clean ∪ copies, gold pairs).

    Copy ids are ``dup-<original id>``; gold pairs are canonical
    ``qualified_id`` tuples, directly comparable with
    :attr:`repro.er.matching.MatchResult.pair_ids`.
    """
    rng = random.Random(config.seed)
    originals = list(entities)
    num_copies = int(round(len(originals) * config.duplicate_fraction))
    victims = rng.sample(originals, num_copies) if num_copies else []
    copies: list[Entity] = []
    gold: set[tuple[str, str]] = set()
    weights = [w for _fn, w in config.corruptors]
    functions = [fn for fn, _w in config.corruptors]
    for original in victims:
        value = original.get(config.attribute)
        attributes = dict(original.attributes)
        if value is not None:
            text = str(value)
            prefix = text[: config.protect_prefix]
            body = text[config.protect_prefix:]
            for _ in range(rng.randint(1, config.max_edits)):
                corruptor = rng.choices(functions, weights=weights)[0]
                body = corruptor(body, rng)
            attributes[config.attribute] = prefix + body
        for name in list(attributes):
            if name != config.attribute and rng.random() < config.missing_value_rate:
                attributes[name] = None
        copy = Entity(f"dup-{original.entity_id}", attributes, original.source)
        copies.append(copy)
        gold.add(tuple(sorted((original.qualified_id, copy.qualified_id))))
    combined = originals + copies
    rng.shuffle(combined)
    return CorruptedDataset(tuple(combined), frozenset(gold))
