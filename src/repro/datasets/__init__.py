"""Dataset substrate: synthetic DS1/DS2 stand-ins, skew models, partitioning."""

from .corruption import (
    CorruptedDataset,
    CorruptionConfig,
    corrupt_dataset,
)
from .generators import (
    DS1_PROFILE,
    DS2_PROFILE,
    DatasetProfile,
    ProductGenerator,
    PublicationGenerator,
    generate_products,
    generate_publications,
)
from .loaders import (
    iter_entities_csv,
    iter_entity_batches,
    load_entities_csv,
    save_entities_csv,
)
from .partitioning import (
    distribute_block_sizes,
    order_entities,
    partition_entities,
)
from .skew import (
    apportion,
    exponential_block_sizes,
    largest_block_share,
    pair_count,
    zipf_block_sizes,
)

__all__ = [
    "CorruptedDataset",
    "CorruptionConfig",
    "corrupt_dataset",
    "DS1_PROFILE",
    "DS2_PROFILE",
    "DatasetProfile",
    "ProductGenerator",
    "PublicationGenerator",
    "generate_products",
    "generate_publications",
    "iter_entities_csv",
    "iter_entity_batches",
    "load_entities_csv",
    "save_entities_csv",
    "distribute_block_sizes",
    "order_entities",
    "partition_entities",
    "apportion",
    "exponential_block_sizes",
    "largest_block_share",
    "pair_count",
    "zipf_block_sizes",
]
