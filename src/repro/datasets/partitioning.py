"""Input partitioning: how entities land in the m map partitions.

BlockSplit's quality depends on the input order (Figure 11): it splits
blocks *by input partition*, so a dataset sorted by the blocking key
concentrates each large block in few partitions and caps the achievable
parallelism.  This module provides both the entity-level partitioners
(for executed workflows) and the analytic size-matrix distributors (for
planner-scale benchmarks where entities are never materialised).
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from ..er.blocking import BlockingFunction
from ..er.entity import Entity
from ..mapreduce.types import Partition, make_partitions

InputOrder = str  # "input" | "shuffled" | "sorted"

_ORDERS = ("input", "shuffled", "sorted")


def order_entities(
    entities: Sequence[Entity],
    order: InputOrder = "input",
    *,
    sort_key: Callable[[Entity], object] | None = None,
    seed: int = 13,
) -> list[Entity]:
    """Reorder a dataset prior to partitioning.

    ``"input"`` keeps the given order, ``"shuffled"`` applies a seeded
    shuffle, ``"sorted"`` sorts by ``sort_key`` (default: title) — the
    adversarial case for BlockSplit in Figure 11.
    """
    if order not in _ORDERS:
        raise ValueError(f"order must be one of {_ORDERS}, got {order!r}")
    result = list(entities)
    if order == "shuffled":
        random.Random(seed).shuffle(result)
    elif order == "sorted":
        key = sort_key if sort_key is not None else _default_sort_key
        result.sort(key=key)
    return result


def _default_sort_key(entity: Entity) -> str:
    return str(entity.get("title") or "")


def partition_entities(
    entities: Sequence[Entity],
    num_partitions: int,
    order: InputOrder = "input",
    *,
    sort_key: Callable[[Entity], object] | None = None,
    seed: int = 13,
) -> list[Partition]:
    """Order then split into contiguous near-equal partitions."""
    ordered = order_entities(entities, order, sort_key=sort_key, seed=seed)
    return make_partitions(ordered, num_partitions)


# ---------------------------------------------------------------------------
# Analytic distribution of block sizes over partitions (planner path)
# ---------------------------------------------------------------------------


def distribute_block_sizes(
    block_sizes: Sequence[int],
    num_partitions: int,
    order: InputOrder = "shuffled",
    *,
    seed: int = 13,
) -> list[list[int]]:
    """Produce the ``b × m`` BDM size matrix a given input order induces.

    ``"shuffled"``/``"input"`` model a dataset whose order is
    independent of the blocking key: each block's entities spread
    hypergeometrically over the contiguous partition slices (we sample
    a random global order without materialising it).  ``"sorted"``
    models a dataset sorted by blocking key: blocks occupy contiguous
    index ranges and therefore touch only 1-2 partitions each (for
    m ≪ b).
    """
    if num_partitions <= 0:
        raise ValueError(f"num_partitions must be positive, got {num_partitions}")
    if order not in _ORDERS:
        raise ValueError(f"order must be one of {_ORDERS}, got {order!r}")
    if any(n < 0 for n in block_sizes):
        raise ValueError("block sizes must be non-negative")
    total = sum(block_sizes)
    base, extra = divmod(total, num_partitions)
    partition_capacity = [
        base + (1 if p < extra else 0) for p in range(num_partitions)
    ]

    if order == "sorted":
        return _distribute_contiguous(block_sizes, partition_capacity)
    return _distribute_hypergeometric(block_sizes, partition_capacity, seed)


def _distribute_contiguous(
    block_sizes: Sequence[int], capacity: Sequence[int]
) -> list[list[int]]:
    """Blocks laid out back to back, sliced into partitions."""
    matrix = [[0] * len(capacity) for _ in block_sizes]
    partition = 0
    room = capacity[0] if capacity else 0
    for k, size in enumerate(block_sizes):
        remaining = size
        while remaining > 0:
            if room == 0:
                partition += 1
                room = capacity[partition]
            used = min(remaining, room)
            matrix[k][partition] += used
            remaining -= used
            room -= used
    return matrix


def _distribute_hypergeometric(
    block_sizes: Sequence[int], capacity: Sequence[int], seed: int
) -> list[list[int]]:
    """Sample how blocks spread under a uniformly random global order.

    Sequentially draws, for every partition slice, a multivariate
    hypergeometric sample over the remaining block populations —
    exactly the distribution induced by shuffling all entities and
    cutting contiguous slices, but in O(b·m) time and O(b) space.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    remaining = list(block_sizes)
    matrix = [[0] * len(capacity) for _ in block_sizes]
    total_remaining = sum(remaining)
    for p, slots in enumerate(capacity):
        if p == len(capacity) - 1:
            # Last slice takes everything left.
            for k, count in enumerate(remaining):
                matrix[k][p] = count
            break
        # Sequential conditional sampling of a multivariate
        # hypergeometric: block k's share of this slice is
        # H(pop_k, still-unconsidered population, still-open slots).
        to_draw = slots
        conditional_population = total_remaining
        for k in range(len(remaining)):
            if to_draw == 0:
                break
            pop = remaining[k]
            if pop == 0:
                continue
            taken = _hypergeometric_sample(
                rng, pop, conditional_population, to_draw
            )
            matrix[k][p] = taken
            remaining[k] -= taken
            conditional_population -= pop
            to_draw -= taken
        total_remaining -= slots - to_draw
    return matrix


def _hypergeometric_sample(rng, successes: int, population: int, draws: int) -> int:
    """One hypergeometric variate: #successes among ``draws`` of
    ``population`` items containing ``successes`` marked ones.

    ``rng`` is a ``numpy.random.Generator`` — exact sampling that stays
    fast for the millions-scale populations of DS2.
    """
    if draws >= population:
        return successes
    if successes == 0 or draws == 0:
        return 0
    return int(rng.hypergeometric(successes, population - successes, draws))
