"""Synthetic dataset generators standing in for the paper's DS1 and DS2.

The paper evaluates on two proprietary/real-world datasets we cannot
redistribute:

* **DS1** — ≈ 114,000 e-commerce product offers;
* **DS2** — ≈ 1.4 million CiteSeerX publication records.

The only dataset properties the experiments exercise are (a) the
distribution of 3-letter title prefixes — i.e. the block-size
distribution under the default blocking — and (b) title lengths, which
drive the comparison cost.  The generators therefore synthesize titles
whose *prefix* follows a configurable Zipf law (calibrated so the
largest block's entity/pair shares match the paper's headline numbers)
while the rest of the title is realistic enough for edit-distance
matching to be meaningful.  A configurable fraction of entities are
near-duplicates (typo-perturbed copies) so matching finds actual
matches.

Everything is deterministic given a seed.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field
from typing import Sequence

from ..er.entity import Entity
from .skew import zipf_block_sizes

# Stems used to expand 3-letter prefixes into plausible leading words.
_PRODUCT_STEMS = [
    "samsung", "sony", "panasonic", "canon", "nikon", "apple", "lenovo",
    "toshiba", "philips", "logitech", "olympus", "garmin", "siemens",
    "motorola", "nokia", "kingston", "sandisk", "epson", "brother",
    "fujitsu", "acer", "asus", "dell", "sharp", "pioneer", "kenwood",
    "yamaha", "casio", "kodak", "hitachi", "sanyo", "benq", "viewsonic",
]
_PRODUCT_NOUNS = [
    "notebook", "camera", "printer", "monitor", "keyboard", "speaker",
    "router", "tablet", "phone", "projector", "scanner", "headset",
    "drive", "player", "charger", "adapter", "lens", "memory card",
]
_PRODUCT_QUALIFIERS = [
    "pro", "plus", "ultra", "compact", "wireless", "digital", "portable",
    "mini", "hd", "series", "edition", "black", "silver", "white",
]

_PUBLICATION_STEMS = [
    "the", "analysis", "towards", "learning", "efficient", "distributed",
    "parallel", "adaptive", "dynamic", "optimal", "scalable", "robust",
    "probabilistic", "statistical", "automatic", "incremental", "modeling",
    "evaluation", "performance", "design", "implementation", "survey",
]
_PUBLICATION_NOUNS = [
    "algorithms", "systems", "networks", "databases", "queries",
    "computation", "optimization", "classification", "clustering",
    "retrieval", "indexing", "processing", "estimation", "inference",
    "recognition", "integration", "resolution", "management",
]
_PUBLICATION_CONNECTIVES = ["for", "of", "in", "with", "over", "under", "via"]

_VENUES = ["icde", "sigmod", "vldb", "kdd", "www", "cikm", "edbt", "icdm"]


@dataclass(frozen=True, slots=True)
class DatasetProfile:
    """Shape parameters of a synthetic dataset.

    ``zipf_exponent`` controls prefix skew: ≈ 1.2 reproduces DS1's
    "largest block > 70 % of all pairs"; DS2 uses a heavier head (a
    dirty web-extracted corpus where one prefix dominates) so that the
    DS2/DS1 total-pair ratio lands in the paper's "> 2,000×" regime.
    """

    name: str
    num_entities: int
    num_blocks: int
    zipf_exponent: float
    duplicate_rate: float = 0.15
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_entities <= 0:
            raise ValueError("num_entities must be positive")
        if self.num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        if not 0.0 <= self.duplicate_rate < 1.0:
            raise ValueError("duplicate_rate must be in [0, 1)")

    def scaled(self, factor: float) -> "DatasetProfile":
        """Same shape, fewer entities — for fast test/bench variants."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return DatasetProfile(
            name=f"{self.name}-x{factor:g}",
            num_entities=max(2, int(self.num_entities * factor)),
            num_blocks=max(1, min(self.num_blocks, int(self.num_entities * factor))),
            zipf_exponent=self.zipf_exponent,
            duplicate_rate=self.duplicate_rate,
            seed=self.seed,
        )


#: DS1-like: 114 k products, ~2,800 prefix blocks, Zipf 1.2.
DS1_PROFILE = DatasetProfile(
    name="ds1-products",
    num_entities=114_000,
    num_blocks=2_800,
    zipf_exponent=1.2,
    seed=42,
)

#: DS2-like: 1.4 M publications; heavier head (exponent 1.6) models the
#: dominant "the ..." prefix of a web-crawled bibliography.
DS2_PROFILE = DatasetProfile(
    name="ds2-publications",
    num_entities=1_400_000,
    num_blocks=8_000,
    zipf_exponent=1.6,
    seed=43,
)


class _PrefixVocabulary:
    """Deterministic pool of distinct 3-letter prefixes with word stems.

    Prefix ``k`` is the block with the ``k``-th largest size.  Known
    stems supply realistic leading words; synthesized suffixes cover
    the tail.
    """

    def __init__(self, stems: Sequence[str], num_blocks: int, rng: random.Random):
        self._words: list[str] = []
        seen: set[str] = set()
        for stem in stems:
            prefix = stem[:3]
            if len(prefix) == 3 and prefix not in seen:
                seen.add(prefix)
                self._words.append(stem)
            if len(self._words) >= num_blocks:
                break
        # Fill the remainder with pronounceable synthetic words.
        consonants = "bcdfghklmnprstvz"
        vowels = "aeiou"
        while len(self._words) < num_blocks:
            word = (
                rng.choice(consonants)
                + rng.choice(vowels)
                + rng.choice(consonants)
                + rng.choice(vowels)
                + rng.choice(consonants)
            )
            if word[:3] not in seen:
                seen.add(word[:3])
                self._words.append(word)

    def leading_word(self, block: int) -> str:
        return self._words[block]


@dataclass
class _GeneratorSpec:
    stems: Sequence[str]
    nouns: Sequence[str]
    extras: Sequence[str]


class SyntheticDatasetGenerator:
    """Generates entities whose 3-letter-prefix blocks follow the profile."""

    def __init__(self, profile: DatasetProfile, spec: _GeneratorSpec):
        self.profile = profile
        self._spec = spec

    # -- public API --------------------------------------------------------

    def block_sizes(self) -> list[int]:
        """The exact block-size distribution the entities will follow."""
        return zipf_block_sizes(
            self.profile.num_entities,
            self.profile.num_blocks,
            self.profile.zipf_exponent,
        )

    def generate(self) -> list[Entity]:
        """Materialise the full dataset, shuffled into key-independent order."""
        rng = random.Random(self.profile.seed)
        vocabulary = _PrefixVocabulary(
            self._spec.stems, self.profile.num_blocks, rng
        )
        entities: list[Entity] = []
        counter = 0
        for block, size in enumerate(self.block_sizes()):
            originals: list[str] = []
            for _ in range(size):
                duplicate_pool = originals if originals else None
                make_duplicate = (
                    duplicate_pool is not None
                    and rng.random() < self.profile.duplicate_rate
                )
                if make_duplicate:
                    title = self._perturb(rng.choice(duplicate_pool), rng)
                else:
                    title = self._compose_title(vocabulary, block, rng)
                    originals.append(title)
                entities.append(self._build_entity(f"e{counter}", title, rng))
                counter += 1
        rng.shuffle(entities)
        return entities

    # -- internals -----------------------------------------------------------

    def _compose_title(
        self, vocabulary: _PrefixVocabulary, block: int, rng: random.Random
    ) -> str:
        words = [vocabulary.leading_word(block)]
        words.append(rng.choice(self._spec.nouns))
        if self._spec.extras and rng.random() < 0.8:
            words.append(rng.choice(self._spec.extras))
        if rng.random() < 0.6:
            words.append(rng.choice(self._spec.nouns))
        if rng.random() < 0.5:
            words.append(str(rng.randint(1, 9999)))
        return " ".join(words)

    def _perturb(self, title: str, rng: random.Random) -> str:
        """A near-duplicate: 1-2 character edits after the prefix,
        keeping the entity in the same block."""
        chars = list(title)
        for _ in range(rng.randint(1, 2)):
            position = rng.randrange(3, len(chars)) if len(chars) > 3 else 3
            operation = rng.random()
            if operation < 0.4 and position < len(chars):
                chars[position] = rng.choice(string.ascii_lowercase)
            elif operation < 0.7:
                chars.insert(min(position, len(chars)), rng.choice(string.ascii_lowercase))
            elif len(chars) > 4 and position < len(chars):
                del chars[position]
        return "".join(chars)

    def _build_entity(self, entity_id: str, title: str, rng: random.Random) -> Entity:
        raise NotImplementedError


class ProductGenerator(SyntheticDatasetGenerator):
    """DS1-like product offers: title, manufacturer, price."""

    def __init__(self, profile: DatasetProfile = DS1_PROFILE):
        super().__init__(
            profile,
            _GeneratorSpec(_PRODUCT_STEMS, _PRODUCT_NOUNS, _PRODUCT_QUALIFIERS),
        )

    def _build_entity(self, entity_id: str, title: str, rng: random.Random) -> Entity:
        return Entity(
            entity_id,
            {
                "title": title,
                "manufacturer": title.split()[0],
                "price": round(rng.uniform(5.0, 2500.0), 2),
            },
        )


class PublicationGenerator(SyntheticDatasetGenerator):
    """DS2-like publication records: title, authors, venue, year."""

    def __init__(self, profile: DatasetProfile = DS2_PROFILE):
        super().__init__(
            profile,
            _GeneratorSpec(
                _PUBLICATION_STEMS, _PUBLICATION_NOUNS, _PUBLICATION_CONNECTIVES
            ),
        )

    def _build_entity(self, entity_id: str, title: str, rng: random.Random) -> Entity:
        surname = "".join(rng.choices(string.ascii_lowercase, k=6)).capitalize()
        return Entity(
            entity_id,
            {
                "title": title,
                "authors": f"{surname}, {rng.choice(string.ascii_uppercase)}.",
                "venue": rng.choice(_VENUES),
                "year": rng.randint(1990, 2011),
            },
        )


def generate_products(
    num_entities: int = 1_000, *, seed: int = 42, num_blocks: int | None = None
) -> list[Entity]:
    """Convenience: a small DS1-shaped product dataset."""
    profile = DatasetProfile(
        name="products",
        num_entities=num_entities,
        num_blocks=num_blocks if num_blocks is not None else max(1, num_entities // 40),
        zipf_exponent=DS1_PROFILE.zipf_exponent,
        seed=seed,
    )
    return ProductGenerator(profile).generate()


def generate_publications(
    num_entities: int = 1_000, *, seed: int = 43, num_blocks: int | None = None
) -> list[Entity]:
    """Convenience: a small DS2-shaped publication dataset."""
    profile = DatasetProfile(
        name="publications",
        num_entities=num_entities,
        num_blocks=num_blocks if num_blocks is not None else max(1, num_entities // 175),
        zipf_exponent=DS2_PROFILE.zipf_exponent,
        seed=seed,
    )
    return PublicationGenerator(profile).generate()
