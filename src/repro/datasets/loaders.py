"""CSV round-trip for entity datasets.

Keeps the library usable with real data: one row per entity, one
column per attribute, plus the reserved ``_id`` and ``_source``
columns.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from ..er.entity import Entity

_ID_COLUMN = "_id"
_SOURCE_COLUMN = "_source"


def save_entities_csv(entities: Sequence[Entity], path: str | Path) -> None:
    """Write entities to CSV; attribute set is the union across entities."""
    if not entities:
        raise ValueError("cannot save an empty dataset")
    attributes: list[str] = []
    seen: set[str] = set()
    for entity in entities:
        for name in entity.attributes:
            if name not in seen:
                seen.add(name)
                attributes.append(name)
    if _ID_COLUMN in seen or _SOURCE_COLUMN in seen:
        raise ValueError(
            f"attribute names {_ID_COLUMN!r}/{_SOURCE_COLUMN!r} are reserved"
        )
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow([_ID_COLUMN, _SOURCE_COLUMN, *attributes])
        for entity in entities:
            row = [entity.entity_id, entity.source]
            row.extend(
                "" if entity.get(name) is None else str(entity.get(name))
                for name in attributes
            )
            writer.writerow(row)


def iter_entities_csv(
    path: str | Path, *, source: str | None = None
) -> Iterator[Entity]:
    """Stream entities from CSV written by :func:`save_entities_csv`
    (or any CSV with an ``_id`` column), one row at a time.

    This is the streaming substrate of
    :class:`~repro.io.CsvShardSource`: the file is never materialized as
    a whole, so shard-level statistics and partition construction work
    on inputs larger than memory.  ``source`` overrides the stored
    source tag for every entity — convenient when loading the S side of
    a two-source match task.
    """
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty") from None
        if _ID_COLUMN not in header:
            raise ValueError(f"{path} lacks the required {_ID_COLUMN!r} column")
        id_index = header.index(_ID_COLUMN)
        source_index = header.index(_SOURCE_COLUMN) if _SOURCE_COLUMN in header else None
        attribute_indexes = [
            (i, name)
            for i, name in enumerate(header)
            if name not in (_ID_COLUMN, _SOURCE_COLUMN)
        ]
        for row_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(header):
                raise ValueError(
                    f"{path}:{row_number}: expected {len(header)} columns, got {len(row)}"
                )
            attributes = {
                name: (row[i] if row[i] != "" else None)
                for i, name in attribute_indexes
            }
            entity_source = source
            if entity_source is None:
                entity_source = row[source_index] if source_index is not None else "R"
            yield Entity(row[id_index], attributes, entity_source)


def load_entities_csv(path: str | Path, *, source: str | None = None) -> list[Entity]:
    """Read a whole CSV of entities into memory (see :func:`iter_entities_csv`)."""
    return list(iter_entities_csv(path, source=source))


def iter_entity_batches(
    entities: Iterable[Entity], batch_size: int
) -> Iterable[list[Entity]]:
    """Yield fixed-size batches (streaming ingestion helper)."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    batch: list[Entity] = []
    for entity in entities:
        batch.append(entity)
        if len(batch) == batch_size:
            yield batch
            batch = []
    if batch:
        yield batch
