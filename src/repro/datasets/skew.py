"""Block-size distributions.

The robustness experiment (Section VI-A) controls skew by generating
block distributions where block ``k``'s size is proportional to
``e^(−s·k)`` over a fixed ``b = 100`` blocks; ``s = 0`` is uniform.
The real datasets' prefix blocking follows a Zipf-like law, which the
synthetic dataset generators mimic.

All functions return integer size lists that sum *exactly* to the
requested entity count (largest-remainder apportionment), because the
strategies' bookkeeping is exact and off-by-one drift would make
planner/executor comparisons flaky.
"""

from __future__ import annotations

import math
from typing import Sequence


def apportion(weights: Sequence[float], total: int) -> list[int]:
    """Distribute ``total`` integer units proportionally to ``weights``.

    Largest-remainder (Hamilton) method: deterministic, exact sum,
    every positive weight gets its floor share first.
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if not weights:
        raise ValueError("weights must be non-empty")
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    weight_sum = float(sum(weights))
    if weight_sum == 0:
        raise ValueError("weights must not all be zero")
    quotas = [w * total / weight_sum for w in weights]
    sizes = [int(math.floor(q)) for q in quotas]
    shortfall = total - sum(sizes)
    # Hand the remaining units to the largest fractional remainders
    # (ties broken by index for determinism).
    remainders = sorted(
        range(len(weights)), key=lambda i: (-(quotas[i] - sizes[i]), i)
    )
    for i in remainders[:shortfall]:
        sizes[i] += 1
    return sizes


def exponential_block_sizes(
    num_entities: int, num_blocks: int = 100, skew: float = 0.0
) -> list[int]:
    """Section VI-A's distribution: size of block ``k`` ∝ ``e^(−s·k)``.

    ``skew = 0`` yields equal blocks; the paper varies ``s`` from 0 to 1.
    """
    if num_blocks <= 0:
        raise ValueError(f"num_blocks must be positive, got {num_blocks}")
    if skew < 0:
        raise ValueError(f"skew must be non-negative, got {skew}")
    weights = [math.exp(-skew * k) for k in range(num_blocks)]
    return apportion(weights, num_entities)


def zipf_block_sizes(
    num_entities: int, num_blocks: int, exponent: float = 1.2
) -> list[int]:
    """Zipf-distributed block sizes: size of block ``k`` ∝ ``(k+1)^−a``.

    Exponent ≈ 1.2 reproduces DS1's headline property — the largest
    block holds roughly 70 % of all pairs while containing well under a
    quarter of the entities.
    """
    if num_blocks <= 0:
        raise ValueError(f"num_blocks must be positive, got {num_blocks}")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    weights = [(k + 1) ** -exponent for k in range(num_blocks)]
    return apportion(weights, num_entities)


def pair_count(block_sizes: Sequence[int]) -> int:
    """Total comparisons induced by a block-size distribution."""
    return sum(n * (n - 1) // 2 for n in block_sizes)


def largest_block_share(block_sizes: Sequence[int]) -> tuple[float, float]:
    """``(entity share, pair share)`` of the largest block — the two
    skew statistics Figure 8 reports."""
    if not block_sizes:
        raise ValueError("block_sizes must be non-empty")
    total_entities = sum(block_sizes)
    total_pairs = pair_count(block_sizes)
    largest = max(block_sizes)
    entity_share = largest / total_entities if total_entities else 0.0
    pair_share = (
        largest * (largest - 1) // 2 / total_pairs if total_pairs else 0.0
    )
    return entity_share, pair_share
