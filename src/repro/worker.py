"""The distributed backend's worker process (``python -m repro.worker``).

A worker is the remote half of
:class:`~repro.engine.distributed.DistributedRuntime`: it connects back
to the driver's loopback socket, authenticates with the per-cluster
token, and then loops — receive one task message, run the named task
unit (:func:`~repro.mapreduce.runtime.execute_map_task` or
:func:`~repro.mapreduce.runtime.execute_reduce_task`), send the result
back.  Task units are pure with respect to the worker, so the driver
can merge results in task-index order and requeue a lost task on a
different worker without any cleanup protocol.

A daemon thread sends a heartbeat message every ``--heartbeat-interval``
seconds.  Heartbeats prove the *process* is alive (the driver declares
a silent worker dead); a worker stuck inside a task unit keeps
heartbeating, which is exactly why the driver pairs heartbeats with a
per-task timeout.

Protocol (all messages are tuples; see :mod:`repro.mapreduce.transport`
for the framing):

========================================  ===============================
worker → driver                           meaning
========================================  ===============================
*raw token bytes* (no framing)            authenticate — compared by the
                                          driver before it unpickles
                                          anything from this connection
``("hello", index, pid)``                 identify
``("heartbeat",)``                        liveness
``("result", task_id, result)``           task unit finished
``("error", task_id, exception)``         task unit raised
========================================  ===============================

The token arrives in the :data:`ENV_TOKEN` environment variable (never
on the command line, which other local users could read via ``ps`` /
``/proc``).

========================================  ===============================
driver → worker                           meaning
========================================  ===============================
``("task", task_id, kind, args)``         run ``kind`` ("map"/"reduce")
``("shutdown",)``                         exit cleanly
========================================  ===============================

Fault injection (test hook)
---------------------------
The fault-injection test harness arms workers through the environment —
no special build, no monkeypatching across process boundaries:

``REPRO_WORKER_FAULT=crash:N``
    ``os._exit`` (no result, no goodbye) on receiving the N-th task.
``REPRO_WORKER_FAULT=hang:N``
    sleep indefinitely inside the N-th task, heartbeats still flowing —
    only the driver's per-task timeout can catch this.
``REPRO_WORKER_FAULT_WORKERS=0,2`` / ``all``
    which worker indices inject (default ``0``: one faulty worker).

``N`` is 1-based and counted per worker (its N-th received task), so a
requeued task does not re-trigger the fault on the surviving workers.
"""

from __future__ import annotations

import argparse
import os
import threading
import time
from typing import Any, Sequence

from .mapreduce.runtime import execute_map_task, execute_reduce_task
from .mapreduce.transport import (
    ENV_TOKEN,
    Connection,
    TransportError,
    connect,
    shippable_exception,
)

#: Task-unit registry: the driver names units, it never ships code.
TASK_UNITS = {
    "map": execute_map_task,
    "reduce": execute_reduce_task,
}

#: Exit code of an injected crash (distinguishable from real tracebacks).
FAULT_EXIT_CODE = 23

ENV_FAULT = "REPRO_WORKER_FAULT"
ENV_FAULT_WORKERS = "REPRO_WORKER_FAULT_WORKERS"


class FaultInjector:
    """Parses the fault env hook and trips it at the configured task.

    Inert unless :data:`ENV_FAULT` is set *and* this worker's index is
    selected by :data:`ENV_FAULT_WORKERS`.
    """

    def __init__(self, worker_index: int, env: "dict[str, str] | None" = None):
        environ = os.environ if env is None else env
        self.mode: str | None = None
        self.at_task = 0
        spec = environ.get(ENV_FAULT, "")
        if not spec:
            return
        try:
            mode, _, number = spec.partition(":")
            at_task = int(number)
        except ValueError:
            raise SystemExit(
                f"{ENV_FAULT} must look like 'crash:N' or 'hang:N', got {spec!r}"
            )
        if mode not in ("crash", "hang") or at_task < 1:
            raise SystemExit(
                f"{ENV_FAULT} must look like 'crash:N' or 'hang:N', got {spec!r}"
            )
        selected = environ.get(ENV_FAULT_WORKERS, "0")
        if selected != "all":
            try:
                indices = {int(piece) for piece in selected.split(",")}
            except ValueError:
                raise SystemExit(
                    f"{ENV_FAULT_WORKERS} must be 'all' or comma-separated "
                    f"indices, got {selected!r}"
                )
            if worker_index not in indices:
                return
        self.mode = mode
        self.at_task = at_task

    def maybe_trip(self, task_number: int) -> None:
        """Crash or hang if ``task_number`` (1-based) is the armed one."""
        if self.mode is None or task_number != self.at_task:
            return
        if self.mode == "crash":
            # A real crash: no result message, no clean shutdown — the
            # driver learns about it from the broken connection.
            os._exit(FAULT_EXIT_CODE)
        while True:  # "hang": burn wall-clock inside the task unit
            time.sleep(3600)


def _start_heartbeats(conn: Connection, interval: float) -> threading.Event:
    """Send ``("heartbeat",)`` every ``interval`` seconds until told to
    stop or the driver goes away; returns the stop flag."""
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(interval):
            try:
                conn.send(("heartbeat",))
            except TransportError:
                return

    threading.Thread(target=beat, name="repro-worker-heartbeat", daemon=True).start()
    return stop


def serve(conn: Connection, fault: FaultInjector) -> int:
    """The worker main loop: one task at a time until shutdown/EOF."""
    tasks_received = 0
    while True:
        try:
            message = conn.recv()
        except TransportError:
            return 0  # driver gone: nothing useful left to do
        kind = message[0]
        if kind == "shutdown":
            return 0
        if kind != "task":
            continue  # unknown chatter: ignore, stay available
        _, task_id, unit, args = message
        tasks_received += 1
        fault.maybe_trip(tasks_received)
        try:
            result: Any = TASK_UNITS[unit](*args)
        # Report, don't die: the failure ships to the driver (which
        # re-raises it) and this worker stays schedulable.
        except BaseException as exc:  # repro-lint: disable=silent-except -- shipped to driver
            reply = ("error", task_id, shippable_exception(exc))
        else:
            reply = ("result", task_id, result)
        try:
            conn.send(reply)
        except TransportError:
            return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.worker",
        description="Worker process of the distributed execution backend "
        "(spawned by DistributedRuntime; not meant for manual use).",
    )
    parser.add_argument("--host", required=True)
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--index", type=int, required=True,
                        help="this worker's slot index in the driver's pool")
    parser.add_argument("--heartbeat-interval", type=float, default=0.5)
    args = parser.parse_args(argv)
    token = os.environ.get(ENV_TOKEN, "")
    if not token:
        raise SystemExit(
            f"{ENV_TOKEN} must carry the cluster token "
            "(this process is spawned by DistributedRuntime)"
        )

    conn = connect(args.host, args.port)
    stop_heartbeats = threading.Event()
    try:
        # Raw, unframed token bytes first: the driver authenticates
        # this connection before it unpickles a single message from it.
        conn.send_bytes(token.encode("ascii"))
        conn.send(("hello", args.index, os.getpid()))
        stop_heartbeats = _start_heartbeats(conn, args.heartbeat_interval)
        return serve(conn, FaultInjector(args.index))
    finally:
        stop_heartbeats.set()
        conn.close()


if __name__ == "__main__":
    raise SystemExit(main())
