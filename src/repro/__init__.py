"""repro — Load Balancing for MapReduce-based Entity Resolution.

A complete, from-scratch reproduction of Kolb, Thor & Rahm (ICDE 2012):
the BlockSplit and PairRange load-balancing strategies, the block
distribution matrix workflow, the Basic baseline, two-source matching,
an in-process MapReduce runtime, a calibrated cluster simulator, and
synthetic stand-ins for the paper's datasets.

Quick start::

    from repro import ERPipeline, PrefixBlocking, generate_products

    entities = generate_products(2_000)
    pipeline = ERPipeline(
        "blocksplit", PrefixBlocking("title"),
        num_map_tasks=4, num_reduce_tasks=8,
    )
    result = pipeline.run(entities)
    print(len(result.matches), "duplicate pairs")

    # Same matches, multi-core execution:
    fast = pipeline.with_backend("parallel", max_workers=4).run(entities)
    assert fast.matches == result.matches

    # Submission model: stream matches, watch progress, cancel:
    execution = pipeline.submit(entities)
    for pair in execution.iter_matches():
        print(pair.id1, pair.id2, pair.similarity)
    assert execution.result().matches == result.matches

    # Two sources (R × S linkage) use the same entry point:
    links = pipeline.run(r_entities, s_entities)

    # Analytic planning + cluster simulation, no execution at all:
    planned = pipeline.with_backend("planned").run(entities)
    print(planned.execution_time, "simulated seconds")

    # Persist a run; replan sweeps from the file without re-executing:
    result.save("result.json")
    again = PipelineResult.load("result.json")
    assert again.matches == result.matches
"""

from .analysis import (
    SimulatedRun,
    WorkloadStats,
    bdm_for_block_sizes,
    dataset_statistics,
    format_series,
    format_table,
    imbalance,
    simulate_run,
    speedup,
    sweep_nodes,
    sweep_reduce_tasks,
    sweep_skew,
)
from .cluster import ClusterSimulator, ClusterSpec, CostModel, TaskSpec
from .core import (
    BasicStrategy,
    BlockDistributionMatrix,
    BlockSplitStrategy,
    DualSourceBDM,
    ERWorkflow,
    ERWorkflowResult,
    LoadBalancingStrategy,
    PairEnumeration,
    PairRangeSpec,
    PairRangeStrategy,
    STRATEGIES,
    StrategyPlan,
    register_strategy,
    analytic_bdm,
    compute_bdm,
    get_strategy,
    MultiPassERWorkflow,
    MultiPassResult,
    link_with_missing_keys,
    plan_basic,
    plan_blocksplit,
    plan_pairrange,
    resolve_with_missing_keys,
    simulate_planned_workflow,
    simulate_strategy,
)
from .datasets import (
    DS1_PROFILE,
    DS2_PROFILE,
    DatasetProfile,
    ProductGenerator,
    PublicationGenerator,
    exponential_block_sizes,
    generate_products,
    generate_publications,
    load_entities_csv,
    save_entities_csv,
    zipf_block_sizes,
)
from .engine import (
    BACKENDS,
    AsyncBackend,
    ERPipeline,
    ExecutionBackend,
    ExecutionEvent,
    ExecutionProgress,
    MatcherStats,
    ParallelBackend,
    ParallelRuntime,
    PipelineCancelled,
    PipelineExecution,
    PipelineResult,
    PlannedBackend,
    SerialBackend,
    get_backend,
    register_backend,
)
from .er import (
    AttributeBlocking,
    BlockingFunction,
    ConstantBlocking,
    Entity,
    Matcher,
    MatchPair,
    MatchResult,
    PrefixBlocking,
    ThresholdMatcher,
    levenshtein_similarity,
)
from .io import (
    CsvShardSource,
    GeneratorSource,
    InMemorySource,
    RecordSource,
    ShardBlockStats,
)
from .mapreduce import (
    ExternalShuffle,
    LocalRuntime,
    MapReduceJob,
    Partition,
    make_partitions,
)

__version__ = "1.3.0"

__all__ = [
    "SimulatedRun",
    "WorkloadStats",
    "bdm_for_block_sizes",
    "dataset_statistics",
    "format_series",
    "format_table",
    "imbalance",
    "simulate_run",
    "speedup",
    "sweep_nodes",
    "sweep_reduce_tasks",
    "sweep_skew",
    "ClusterSimulator",
    "ClusterSpec",
    "CostModel",
    "TaskSpec",
    "BasicStrategy",
    "BlockDistributionMatrix",
    "BlockSplitStrategy",
    "DualSourceBDM",
    "ERWorkflow",
    "ERWorkflowResult",
    "LoadBalancingStrategy",
    "PairEnumeration",
    "PairRangeSpec",
    "PairRangeStrategy",
    "STRATEGIES",
    "StrategyPlan",
    "register_strategy",
    "BACKENDS",
    "AsyncBackend",
    "ERPipeline",
    "ExecutionBackend",
    "ExecutionEvent",
    "ExecutionProgress",
    "MatcherStats",
    "ParallelBackend",
    "ParallelRuntime",
    "PipelineCancelled",
    "PipelineExecution",
    "PipelineResult",
    "PlannedBackend",
    "SerialBackend",
    "get_backend",
    "register_backend",
    "analytic_bdm",
    "compute_bdm",
    "get_strategy",
    "MultiPassERWorkflow",
    "MultiPassResult",
    "link_with_missing_keys",
    "plan_basic",
    "plan_blocksplit",
    "plan_pairrange",
    "resolve_with_missing_keys",
    "simulate_planned_workflow",
    "simulate_strategy",
    "DS1_PROFILE",
    "DS2_PROFILE",
    "DatasetProfile",
    "ProductGenerator",
    "PublicationGenerator",
    "exponential_block_sizes",
    "generate_products",
    "generate_publications",
    "load_entities_csv",
    "save_entities_csv",
    "zipf_block_sizes",
    "AttributeBlocking",
    "BlockingFunction",
    "ConstantBlocking",
    "Entity",
    "Matcher",
    "MatchPair",
    "MatchResult",
    "PrefixBlocking",
    "ThresholdMatcher",
    "levenshtein_similarity",
    "CsvShardSource",
    "GeneratorSource",
    "InMemorySource",
    "RecordSource",
    "ShardBlockStats",
    "ExternalShuffle",
    "LocalRuntime",
    "MapReduceJob",
    "Partition",
    "make_partitions",
    "__version__",
]
