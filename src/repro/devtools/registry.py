"""The rule registry: every check is a named, documented, replaceable unit.

A rule is a function decorated with :func:`register_rule`.  Module
rules receive one :class:`~repro.devtools.context.ModuleContext` and
yield raw findings; project rules receive the whole
:class:`~repro.devtools.context.ProjectContext` (cross-file analyses
like pickle-safety reachability).  The runner owns pragma suppression
and baselines — rules just report what they see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from .findings import Finding

#: Scope markers for :class:`Rule.scope`.
MODULE = "module"
PROJECT = "project"


@dataclass(frozen=True)
class Rule:
    """One registered check."""

    name: str
    family: str
    scope: str
    description: str
    check: Callable[..., "Iterator[Finding] | Iterable[Finding]"]

    def run(self, target) -> list[Finding]:
        return list(self.check(target))


_RULES: dict[str, Rule] = {}


def register_rule(
    name: str, *, family: str, scope: str = MODULE, description: str
) -> Callable[[Callable], Callable]:
    """Class decorator-style registration for rule functions.

    ``name`` is what pragmas and baselines refer to; keep it stable.
    """
    if scope not in (MODULE, PROJECT):
        raise ValueError(f"unknown rule scope {scope!r}")

    def decorate(check: Callable) -> Callable:
        if name in _RULES:
            raise ValueError(f"duplicate lint rule name {name!r}")
        _RULES[name] = Rule(
            name=name,
            family=family,
            scope=scope,
            description=description,
            check=check,
        )
        return check

    return decorate


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, sorted by (family, name) for stable output."""
    _load_builtin_rules()
    return tuple(
        sorted(_RULES.values(), key=lambda rule: (rule.family, rule.name))
    )


def get_rule(name: str) -> Rule:
    _load_builtin_rules()
    try:
        return _RULES[name]
    except KeyError:
        known = ", ".join(sorted(_RULES))
        raise KeyError(f"unknown lint rule {name!r} (known: {known})") from None


_loaded = False


def _load_builtin_rules() -> None:
    """Import the built-in rule modules exactly once (registration is a
    side effect of import)."""
    global _loaded
    if _loaded:
        return
    _loaded = True
    from . import (  # noqa: F401  (imported for registration side effect)
        rules_determinism,
        rules_locks,
        rules_pickle,
        rules_resources,
        rules_style,
        rules_wire,
    )
