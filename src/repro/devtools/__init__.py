"""Project-specific static analysis (``repro-er lint``).

The repo's core guarantee — every backend and the delta path produce
byte-identical results — is enforced dynamically by the equivalence
suites.  :mod:`repro.devtools` turns the *invariants behind* that
guarantee into machine-checked rules that run in milliseconds, on every
commit, before a single test starts:

* **determinism** — no unordered-set iteration, unsorted directory
  walks, clock/RNG-derived values or ``id()``-keyed containers inside
  result-affecting modules;
* **pickle-safety** — nothing reachable from the worker task whitelist
  or the serve protocol carries locks, sockets, lambdas or closures
  across the wire without declaring ``__getstate__``/``__reduce__``;
* **lock discipline** — attributes annotated ``# guarded-by: <lock>``
  are only touched under ``with <lock>``, and no blocking call happens
  while a lock is held;
* **wire-protocol safety** — no unpickling before the token-auth
  preamble, and the worker task map stays a closed whitelist;
* **resource hygiene** — files, sockets and memory maps are closed on
  every path;
* **style invariants** — no runtime ``assert`` on control-flow paths
  (they vanish under ``python -O``), no silent ``except Exception``.

Everything is pure standard library (``ast`` + ``symtable`` +
``tokenize``).  Run ``python -m repro.devtools.lint`` or
``repro-er lint``; see ``docs/lint.md`` for the rule catalog, the
``# repro-lint: disable=RULE`` pragma syntax and the baseline workflow.
"""

from .baseline import Baseline, load_baseline, write_baseline
from .context import ModuleContext, ProjectContext
from .findings import Finding
from .registry import Rule, all_rules, get_rule, register_rule

#: Lazily re-exported from :mod:`repro.devtools.lint` — importing the
#: runner eagerly here would pre-register ``repro.devtools.lint`` in
#: ``sys.modules`` and trip runpy's double-import warning under
#: ``python -m repro.devtools.lint``.
_LINT_EXPORTS = ("LintReport", "lint_paths", "lint_source", "main")


def __getattr__(name: str):
    if name in _LINT_EXPORTS:
        from . import lint

        return getattr(lint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Baseline",
    "Finding",
    "LintReport",
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "main",
    "register_rule",
    "write_baseline",
]
