"""Pickle-safety rules: nothing unpicklable may reach the worker wire.

The distributed backend, the shared serve pool and the serve protocol
all ship objects through ``pickle``: the worker task whitelist
(``execute_map_task``/``execute_reduce_task``) carries jobs, matchers,
blocking functions and record buckets; ``PipelineRequest``,
``PipelineResult`` and ``ExecutionEvent`` travel between client and
server.  An unpicklable object in that closure surfaces as a runtime
``PicklingError`` on the first distributed run — these rules surface it
at lint time instead.

How the reachable set is computed (pure ``ast`` + ``symtable``):

1. **Seeds** — the parameter annotations of the task-whitelist
   functions, plus the wire message classes, plus anything marked
   ``# repro-lint: wire-root``.
2. **Closure** — from every reachable class, follow dataclass field
   annotations, ``self.attr: T`` annotations, ``self.attr = Cls(...)``
   constructor calls, base classes, and *subclasses* (the wire carries
   the runtime type, not the declared one).
3. **Stop at custom serialization** — a class defining (or inheriting,
   within the project) ``__getstate__``/``__reduce__``/
   ``__reduce_ex__``/``__getnewargs__`` controls its own pickled form:
   it is neither scanned nor expanded.

Within the reachable set, two rules fire:

* ``unpicklable-attribute`` — an instance attribute holds a lock,
  queue, thread, socket, file, mmap or process handle;
* ``unpicklable-callable`` — an instance attribute holds a lambda or a
  locally defined function/class (pickle serializes functions by
  qualified name; ``<locals>`` names never resolve on the other side —
  and ``symtable`` tells us when the local function is also a closure).
"""

from __future__ import annotations

import ast
import symtable
from typing import Iterator

from .context import ModuleContext, ProjectContext
from .findings import Finding
from .registry import PROJECT, register_rule

#: Built-in seed symbols: (module dotted name, symbol).  Fixture files
#: outside the package seed by bare symbol name instead.
SEED_SYMBOLS = {
    ("repro.mapreduce.runtime", "execute_map_task"),
    ("repro.mapreduce.runtime", "execute_reduce_task"),
    ("repro.engine.backend", "PipelineRequest"),
    ("repro.engine.backend", "DeltaSpec"),
    ("repro.engine.result", "PipelineResult"),
    ("repro.mapreduce.events", "ExecutionEvent"),
}
SEED_NAMES = {name for _, name in SEED_SYMBOLS}

#: Constructors whose instances do not survive pickling.
UNSAFE_CTORS = {
    "threading.Lock": "a lock",
    "threading.RLock": "a lock",
    "threading.Condition": "a condition variable",
    "threading.Event": "an event",
    "threading.Semaphore": "a semaphore",
    "threading.BoundedSemaphore": "a semaphore",
    "threading.Barrier": "a barrier",
    "threading.Thread": "a thread",
    "threading.local": "thread-local storage",
    "queue.Queue": "a queue",
    "queue.LifoQueue": "a queue",
    "queue.PriorityQueue": "a queue",
    "queue.SimpleQueue": "a queue",
    "socket.socket": "a socket",
    "socket.create_connection": "a socket",
    "mmap.mmap": "a memory map",
    "subprocess.Popen": "a process handle",
    "open": "an open file",
    "io.open": "an open file",
    "gzip.open": "an open file",
    "bz2.open": "an open file",
    "lzma.open": "an open file",
}

#: Methods whose presence means a class controls its own pickled form.
SERIALIZATION_HOOKS = {
    "__getstate__", "__reduce__", "__reduce_ex__", "__getnewargs__",
    "__getnewargs_ex__",
}


class _ClassInfo:
    """Everything the reachability walk needs about one class."""

    __slots__ = (
        "module", "node", "key", "bases", "defines_hook", "annotation_refs",
        "ctor_refs",
    )

    def __init__(self, module: ModuleContext, node: ast.ClassDef, key):
        self.module = module
        self.node = node
        self.key = key
        self.bases: list = []          # resolved project-class keys
        self.defines_hook = any(
            isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            and item.name in SERIALIZATION_HOOKS
            for item in node.body
        )
        self.annotation_refs: list[ast.AST] = []
        self.ctor_refs: list[ast.AST] = []
        self._collect_refs()

    def _collect_refs(self) -> None:
        for item in self.node.body:
            if isinstance(item, ast.AnnAssign):
                self.annotation_refs.append(item.annotation)
        for node in ast.walk(self.node):
            if isinstance(node, ast.AnnAssign) and _is_self_attr(node.target):
                self.annotation_refs.append(node.annotation)
            elif isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                if any(_is_self_attr(target) for target in node.targets):
                    self.ctor_refs.append(node.value.func)


def _is_self_attr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _annotation_names(annotation: ast.AST) -> "Iterator[ast.AST]":
    """Every Name/Attribute chain referenced by an annotation, string
    annotations included (``"Partition | None"`` parses and resolves)."""
    stack = [annotation]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                stack.append(ast.parse(node.value, mode="eval").body)
            except SyntaxError:
                continue
        elif isinstance(node, (ast.Name, ast.Attribute)):
            yield node
        else:
            stack.extend(ast.iter_child_nodes(node))


def _seed_classes_and_functions(project: ProjectContext):
    """The seed class keys and seed function nodes of this project."""
    seed_classes: list = []
    seed_functions: list[tuple[ModuleContext, ast.AST]] = []
    for module in project.modules:
        for node in module.tree.body:
            is_named_seed = (
                getattr(node, "name", None) in SEED_NAMES
                and (
                    module.dotted_name is None
                    or (module.dotted_name, node.name) in SEED_SYMBOLS
                    or module.package_relpath() is None
                )
            )
            # Trailing comment on the def/class line, or a standalone
            # marker comment on the line above it.
            lineno = getattr(node, "lineno", 0)
            is_marked = bool(
                {lineno, lineno - 1} & module.wire_root_lines
            )
            if not (is_named_seed or is_marked):
                continue
            if isinstance(node, ast.ClassDef):
                seed_classes.append((module, node))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                seed_functions.append((module, node))
    return seed_classes, seed_functions


def _build_index(project: ProjectContext) -> dict:
    """key -> _ClassInfo for every class, with resolved base edges."""
    index: dict = {}
    for (module_name, class_name), (module, node) in project.classes.items():
        key = (module_name, class_name)
        index[key] = _ClassInfo(module, node, key)
    # Classes in loose (package-less) fixture files:
    for module in project.modules:
        if module.dotted_name is not None and module.dotted_name in project.by_name:
            continue
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                key = (module.display_path, node.name)
                index[key] = _ClassInfo(module, node, key)
    for info in index.values():
        for base in info.node.bases:
            resolved = project.resolve_class(info.module, base)
            if resolved is not None:
                base_module, base_node = resolved
                info.bases.append((base_module.dotted_name, base_node.name))
            else:
                # Same-file fixture class without a package name.
                if isinstance(base, ast.Name):
                    local_key = (info.module.display_path, base.id)
                    if local_key in index:
                        info.bases.append(local_key)
    return index


def _reachable_classes(project: ProjectContext, index: dict) -> set:
    seed_classes, seed_functions = _seed_classes_and_functions(project)
    subclasses: dict = {}
    for key, info in index.items():
        for base in info.bases:
            subclasses.setdefault(base, []).append(key)

    def resolve_ref(module: ModuleContext, ref: ast.AST):
        resolved = project.resolve_class(module, ref)
        if resolved is not None:
            return (resolved[0].dotted_name, resolved[1].name)
        if isinstance(ref, ast.Name):
            local_key = (module.display_path, ref.id)
            if local_key in index:
                return local_key
        return None

    worklist: list = []
    for module, node in seed_classes:
        key = (module.dotted_name, node.name)
        if key not in index:
            key = (module.display_path, node.name)
        if key in index:
            worklist.append(key)
    for module, node in seed_functions:
        annotations = [arg.annotation for arg in node.args.args]
        annotations.extend(arg.annotation for arg in node.args.kwonlyargs)
        annotations.append(node.returns)
        for annotation in annotations:
            if annotation is None:
                continue
            for ref in _annotation_names(annotation):
                key = resolve_ref(module, ref)
                if key is not None:
                    worklist.append(key)

    reachable: set = set()
    while worklist:
        key = worklist.pop()
        if key in reachable or key not in index:
            continue
        reachable.add(key)
        info = index[key]
        worklist.extend(info.bases)
        worklist.extend(subclasses.get(key, []))
        if _has_serialization_hook(key, index):
            # A class with custom serialization controls what ships;
            # its members do not extend the reachable set.
            continue
        for annotation in info.annotation_refs:
            for ref in _annotation_names(annotation):
                resolved = resolve_ref(info.module, ref)
                if resolved is not None:
                    worklist.append(resolved)
        for ref in info.ctor_refs:
            resolved = resolve_ref(info.module, ref)
            if resolved is not None:
                worklist.append(resolved)
    return reachable


def _has_serialization_hook(key, index: dict, _seen=None) -> bool:
    """Whether the class or a project ancestor defines a pickle hook."""
    if _seen is None:
        _seen = set()
    if key in _seen or key not in index:
        return False
    _seen.add(key)
    info = index[key]
    if info.defines_hook:
        return True
    return any(_has_serialization_hook(base, index, _seen) for base in info.bases)


def _local_function_names(method: ast.AST) -> dict[str, ast.AST]:
    """Functions/classes defined *inside* ``method`` (pickle cannot
    serialize ``<locals>``-qualified names)."""
    local: dict[str, ast.AST] = {}
    for node in ast.walk(method):
        if node is method:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            local[node.name] = node
    return local


def _free_variables(module: ModuleContext, name: str, lineno: int) -> tuple:
    """The free variables of the nested function ``name`` defined at
    ``lineno`` — ``symtable`` is the authority on closures."""
    table = module.symbol_table()
    if table is None:
        return ()
    stack = [table]
    while stack:
        current = stack.pop()
        if (
            isinstance(current, symtable.Function)
            and current.get_name() == name
            and current.get_lineno() == lineno
        ):
            return tuple(sorted(current.get_frees()))
        stack.extend(current.get_children())
    return ()


def _scan_class(info: _ClassInfo) -> "Iterator[Finding]":
    module = info.module
    for method in info.node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        local_defs = _local_function_names(method)
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign):
                continue
            targets = [t for t in node.targets if _is_self_attr(t)]
            if not targets:
                continue
            attr = targets[0].attr
            value = node.value
            if isinstance(value, ast.Call):
                qualified = module.qualified_name(value.func)
                if qualified in UNSAFE_CTORS:
                    yield Finding(
                        path=module.display_path,
                        line=node.lineno,
                        col=node.col_offset,
                        rule="unpicklable-attribute",
                        message=(
                            f"self.{attr} holds {UNSAFE_CTORS[qualified]} "
                            f"({qualified}) but {info.node.name} is "
                            "wire-reachable and defines no __getstate__/"
                            "__reduce__"
                        ),
                    )
            if isinstance(value, ast.Lambda):
                yield Finding(
                    path=module.display_path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="unpicklable-callable",
                    message=(
                        f"self.{attr} holds a lambda; pickle serializes "
                        "functions by qualified name — use a module-level "
                        f"function ({info.node.name} is wire-reachable)"
                    ),
                )
            if isinstance(value, ast.Name) and value.id in local_defs:
                definition = local_defs[value.id]
                frees = ()
                if isinstance(definition, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    frees = _free_variables(
                        module, definition.name, definition.lineno
                    )
                detail = (
                    f" closing over {', '.join(frees)}" if frees else ""
                )
                yield Finding(
                    path=module.display_path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="unpicklable-callable",
                    message=(
                        f"self.{attr} holds the locally defined "
                        f"{value.id!r}{detail}; <locals> names never "
                        "unpickle — define it at module level "
                        f"({info.node.name} is wire-reachable)"
                    ),
                )
    # Class-body lambdas (``attr = lambda ...`` defaults).
    for item in info.node.body:
        value = None
        if isinstance(item, ast.Assign):
            value = item.value
        elif isinstance(item, ast.AnnAssign):
            value = item.value
        if isinstance(value, ast.Lambda):
            yield Finding(
                path=module.display_path,
                line=item.lineno,
                col=item.col_offset,
                rule="unpicklable-callable",
                message=(
                    f"class attribute of {info.node.name} holds a lambda; "
                    "pickle serializes functions by qualified name — use a "
                    "module-level function"
                ),
            )


def _run_pickle_rules(project: ProjectContext) -> list[Finding]:
    index = _build_index(project)
    reachable = _reachable_classes(project, index)
    findings: list[Finding] = []
    for key in sorted(reachable):
        info = index.get(key)
        if info is None or _has_serialization_hook(key, index):
            continue
        findings.extend(_scan_class(info))
    return findings


@register_rule(
    "unpicklable-attribute",
    family="pickle-safety",
    scope=PROJECT,
    description="wire-reachable class stores a lock/file/socket/queue "
    "without __getstate__/__reduce__",
)
def check_unpicklable_attribute(project: ProjectContext) -> "Iterator[Finding]":
    for finding in _run_pickle_rules(project):
        if finding.rule == "unpicklable-attribute":
            yield finding


@register_rule(
    "unpicklable-callable",
    family="pickle-safety",
    scope=PROJECT,
    description="wire-reachable class stores a lambda/closure/local class",
)
def check_unpicklable_callable(project: ProjectContext) -> "Iterator[Finding]":
    for finding in _run_pickle_rules(project):
        if finding.rule == "unpicklable-callable":
            yield finding
