"""The lint runner and CLI (``python -m repro.devtools.lint``).

Collects ``.py`` files, parses each once into a
:class:`~repro.devtools.context.ModuleContext`, runs every registered
rule (module rules per file, project rules once over the whole set),
then applies ``# repro-lint:`` pragmas and the checked-in baseline.
Exit status is the contract CI gates on: ``0`` when every finding is
suppressed or baselined, ``1`` when new findings exist, ``2`` for
usage errors (unreadable paths, unknown rules, syntax errors).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from .baseline import Baseline, load_baseline, write_baseline
from .context import ModuleContext, ProjectContext
from .findings import Finding
from .registry import PROJECT, Rule, all_rules, get_rule

#: The default baseline filename, looked up in the current directory.
BASELINE_NAME = "lint-baseline.txt"
#: The stable ``--json`` schema version (bump on breaking change).
JSON_SCHEMA_VERSION = 1


@dataclass
class LintReport:
    """Everything one lint run produced."""

    #: Findings neither suppressed by pragma nor matched by baseline.
    new: list[Finding] = field(default_factory=list)
    #: Findings absorbed by the baseline.
    baselined: list[Finding] = field(default_factory=list)
    #: Findings silenced by ``# repro-lint: disable`` pragmas.
    suppressed: list[Finding] = field(default_factory=list)
    #: Files that were scanned.
    files: list[str] = field(default_factory=list)
    #: ``(path, message)`` for files that failed to parse.
    errors: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.new and not self.errors

    def to_json(self) -> dict:
        return {
            "version": JSON_SCHEMA_VERSION,
            "ok": self.ok,
            "files": len(self.files),
            "counts": {
                "new": len(self.new),
                "baselined": len(self.baselined),
                "suppressed": len(self.suppressed),
            },
            "findings": [finding.to_json() for finding in self.new],
            "baselined": [finding.to_json() for finding in self.baselined],
            "errors": [
                {"path": path, "message": message}
                for path, message in self.errors
            ],
        }


def _collect_files(paths: Sequence[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    # De-duplicate while keeping the sorted-per-argument order.
    seen: set[Path] = set()
    unique: list[Path] = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def _line_text(module: ModuleContext, line: int) -> str:
    if 1 <= line <= len(module.lines):
        return module.lines[line - 1]
    return ""


def lint_paths(
    paths: "Sequence[Path | str]",
    *,
    rules: "Sequence[Rule] | None" = None,
    baseline: "Baseline | None" = None,
    root: "Path | None" = None,
) -> LintReport:
    """Run the lint over files/directories and return the report.

    ``root`` makes finding paths relative (defaults to the current
    directory when every target lives under it).
    """
    targets = [Path(path) for path in paths]
    if root is None:
        cwd = Path.cwd()
        if all(path.resolve().is_relative_to(cwd) for path in targets):
            root = cwd
    files = _collect_files(targets)
    report = LintReport()
    modules: list[ModuleContext] = []
    by_path: dict[str, ModuleContext] = {}
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
            module = ModuleContext(path, source, root=root)
        except (OSError, SyntaxError, ValueError) as exc:
            report.errors.append((str(path), str(exc)))
            continue
        modules.append(module)
        by_path[module.display_path] = module
        report.files.append(module.display_path)

    active = list(rules) if rules is not None else list(all_rules())
    project = ProjectContext(modules)
    raw: list[Finding] = []
    for rule in active:
        if rule.scope == PROJECT:
            raw.extend(rule.run(project))
        else:
            for module in modules:
                raw.extend(rule.run(module))

    baseline = baseline if baseline is not None else Baseline()
    for finding in sorted(raw):
        module = by_path.get(finding.path)
        if module is not None and module.is_suppressed(finding.rule, finding.line):
            report.suppressed.append(finding)
        elif module is not None and baseline.match(
            finding, _line_text(module, finding.line)
        ):
            report.baselined.append(finding)
        else:
            report.new.append(finding)
    return report


def lint_source(
    source: str,
    *,
    filename: str = "example.py",
    rules: "Sequence[str] | None" = None,
) -> list[Finding]:
    """Lint one in-memory source string (docs and tests use this).

    ``rules`` selects rule names; default is every registered rule.
    Module- and project-scoped rules both run (the project is just this
    one module).  Pragmas apply; there is no baseline.
    """
    module = ModuleContext(Path(filename), source)
    selected = (
        [get_rule(name) for name in rules] if rules is not None else all_rules()
    )
    project = ProjectContext([module])
    raw: list[Finding] = []
    for rule in selected:
        raw.extend(rule.run(project if rule.scope == PROJECT else module))
    return sorted(
        finding
        for finding in raw
        if not module.is_suppressed(finding.rule, finding.line)
    )


def _default_target() -> Path:
    """``src/repro`` when run from a checkout, else the installed package."""
    checkout = Path("src/repro")
    if checkout.is_dir():
        return checkout
    import repro

    return Path(repro.__file__).resolve().parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-er lint",
        description="Project-specific static analysis: determinism, "
        "pickle-safety, lock-discipline, wire-protocol and resource "
        "invariants (see docs/lint.md).",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the machine-readable report on stdout",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help=f"baseline file (default: ./{BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept the current findings: write them to the baseline "
        "file and exit 0",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: "Sequence[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name:24s} [{rule.family}] {rule.description}")
        return 0
    paths = args.paths or [_default_target()]
    baseline_path = args.baseline
    if baseline_path is None and Path(BASELINE_NAME).exists():
        baseline_path = Path(BASELINE_NAME)
    try:
        rules = (
            [get_rule(name.strip()) for name in args.select.split(",")]
            if args.select
            else None
        )
        baseline = (
            load_baseline(baseline_path)
            if baseline_path is not None and not args.write_baseline
            else None
        )
        report = lint_paths(paths, rules=rules, baseline=baseline)
    except (FileNotFoundError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = baseline_path or Path(BASELINE_NAME)
        pairs = []
        # Re-read the flagged lines for the baseline keys (finding
        # paths are relative to the working directory, see lint_paths).
        for finding in report.new + report.baselined:
            source_path = Path(finding.path)
            try:
                line = source_path.read_text(encoding="utf-8").splitlines()[
                    finding.line - 1
                ]
            except (OSError, IndexError):
                line = ""
            pairs.append((finding, line))
        count = write_baseline(target, pairs)
        print(f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} "
              f"to {target}")
        return 0

    if args.as_json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        for finding in report.new:
            print(finding.render())
        for path, message in report.errors:
            print(f"{path}: parse error: {message}", file=sys.stderr)
        summary = (
            f"{len(report.files)} file(s): {len(report.new)} new finding(s), "
            f"{len(report.baselined)} baselined, "
            f"{len(report.suppressed)} suppressed"
        )
        print(summary, file=sys.stderr)
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
