"""Lock-discipline rules: annotated shared state is touched only under
its lock, and nothing blocks while a lock is held.

The serve layer and the engine document their locking contracts inline:

* ``self._jobs: dict = {}  # guarded-by: _lock`` on the line that
  creates an attribute declares which lock protects it;
* ``def _retire(self):  # holds-lock: _lock`` on a ``def`` line marks a
  method whose *caller* must already hold the lock.

``unguarded-attribute`` then checks every access (read **and** write —
the PR 7 ``_handle_cancel`` race was an unguarded *read*) textually:
an access ``R.attr`` needs an enclosing ``with R.<lock>`` whose
receiver text matches exactly.  ``__init__`` of any class is exempt
(objects are constructed before they are shared), as is any enclosing
method annotated ``# holds-lock:`` with the right lock.

``blocking-under-lock`` flags calls that can block indefinitely inside
a lock-shaped ``with`` block — socket ``recv``/``accept``/``connect``,
timeout-less queue ``get()``, timeout-less ``join()``/``wait()`` and
``time.sleep`` — because a blocked lock holder stalls every other
thread at that lock.  ``Condition.wait``/``wait_for`` on the held
condition itself is the one legitimate pattern (it releases the lock
while sleeping) and is exempt — but only when the condition is the
*sole* lock held.

Matching is textual, not alias-aware: ``s = self.session`` followed by
``s.jobs`` defeats the check.  The convention (documented in
docs/lint.md) is to access guarded state through the same receiver
expression the lock is taken on.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .context import ModuleContext
from .findings import Finding
from .registry import register_rule

#: Method calls that block until the peer acts, regardless of arguments.
BLOCKING_METHODS = {"recv", "recv_raw", "recv_into", "accept", "connect"}
#: Method calls that block only when called without a ``timeout=``.
TIMEOUT_METHODS = {"get", "join", "wait", "wait_for"}
#: ``wait``-style calls that *release* the lock they are called on.
RELEASING_WAITS = {"wait", "wait_for"}


def _is_lock_like(expr: ast.AST) -> bool:
    """Whether a ``with`` context expression looks like a lock.

    Matches by name: the final component (attribute, call target or
    bare name) contains ``lock`` or ``cond``, e.g. ``self._lock``,
    ``session.lock``, ``self._cond``, ``self._state_lock(name)``.
    """
    target = expr
    if isinstance(target, ast.Call):
        target = target.func
    if isinstance(target, ast.Attribute):
        name = target.attr
    elif isinstance(target, ast.Name):
        name = target.id
    else:
        return False
    lowered = name.lower()
    return "lock" in lowered or "cond" in lowered


def _guard_declarations(module: ModuleContext) -> dict[str, set[str]]:
    """attribute name -> lock names, from ``# guarded-by:`` lines.

    The annotation sits on the line of the ``self.attr = ...`` (or
    class-level ``attr: T``) statement that introduces the attribute.
    """
    guards: dict[str, set[str]] = {}
    if not module.guarded_by:
        return guards
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        lock = module.guarded_by.get(node.lineno)
        if lock is None:
            continue
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if isinstance(target, ast.Attribute):
                guards.setdefault(target.attr, set()).add(lock)
            elif isinstance(target, ast.Name):
                guards.setdefault(target.id, set()).add(lock)
    return guards


def _enclosing_functions(
    module: ModuleContext, node: ast.AST
) -> "list[ast.FunctionDef | ast.AsyncFunctionDef]":
    return [
        ancestor
        for ancestor in module.ancestors(node)
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def _held_lock_texts(module: ModuleContext, node: ast.AST) -> list[str]:
    """Unparsed context expressions of lock-like enclosing ``with``s."""
    held: list[str] = []
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                if _is_lock_like(item.context_expr):
                    held.append(ast.unparse(item.context_expr))
    return held


@register_rule(
    "unguarded-attribute",
    family="lock-discipline",
    description="access to '# guarded-by:' state outside 'with <lock>'",
)
def check_unguarded_attribute(module: ModuleContext) -> "Iterator[Finding]":
    guards = _guard_declarations(module)
    if not guards:
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Attribute) or node.attr not in guards:
            continue
        # The declaring line itself (``self.x = {}  # guarded-by: _lock``).
        if node.lineno in module.guarded_by:
            continue
        functions = _enclosing_functions(module, node)
        if any(fn.name == "__init__" for fn in functions):
            continue  # construction precedes sharing
        locks = guards[node.attr]
        if any(
            module.holds_lock.get(fn.lineno) in locks for fn in functions
        ):
            continue  # caller-must-hold method, annotated as such
        receiver = ast.unparse(node.value)
        required = {f"{receiver}.{lock}" for lock in locks}
        if required & set(_held_lock_texts(module, node)):
            continue
        wanted = " or ".join(sorted(f"with {text}" for text in required))
        yield Finding(
            path=module.display_path,
            line=node.lineno,
            col=node.col_offset,
            rule="unguarded-attribute",
            message=(
                f"{receiver}.{node.attr} is '# guarded-by: "
                f"{'/'.join(sorted(locks))}' but this access is not "
                f"inside '{wanted}'"
            ),
        )


def _is_blocking_call(module: ModuleContext, call: ast.Call) -> "str | None":
    """A human-readable reason when ``call`` can block indefinitely."""
    if module.qualified_name(call.func) == "time.sleep":
        return "time.sleep() stalls the lock holder"
    if not isinstance(call.func, ast.Attribute):
        return None
    method = call.func.attr
    if method in BLOCKING_METHODS:
        return f".{method}() blocks on the peer"
    if method in TIMEOUT_METHODS:
        has_timeout = any(
            keyword.arg == "timeout" and not (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is None
            )
            for keyword in call.keywords
        )
        if has_timeout:
            return None
        if method == "get" and call.args:
            return None  # ``d.get(key)`` — dict access, never blocks
        if method == "join" and call.args:
            return None  # ``sep.join(parts)`` — string join
        if method == "join" and any(k.arg for k in call.keywords):
            return None
        return f".{method}() has no timeout"
    return None


@register_rule(
    "blocking-under-lock",
    family="lock-discipline",
    description="indefinitely blocking call while holding a lock",
)
def check_blocking_under_lock(module: ModuleContext) -> "Iterator[Finding]":
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        held = _held_lock_texts(module, node)
        if not held:
            continue
        reason = _is_blocking_call(module, node)
        if reason is None:
            continue
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in RELEASING_WAITS
        ):
            receiver = ast.unparse(node.func.value)
            if all(text == receiver for text in held):
                # Condition.wait() releases the condition it is called
                # on — safe when that condition is the only lock held.
                continue
        yield Finding(
            path=module.display_path,
            line=node.lineno,
            col=node.col_offset,
            rule="blocking-under-lock",
            message=(
                f"{reason} while holding "
                f"{' and '.join(sorted(set(held)))}; release the lock "
                "first or add a timeout"
            ),
        )
