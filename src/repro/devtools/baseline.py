"""Grandfathered findings: the checked-in lint baseline.

A baseline entry pins one *accepted* finding so the linter gates only
on **new** findings.  Entries are keyed by ``(rule, path, stripped
source line text)`` rather than line numbers, so unrelated edits above
a grandfathered site do not invalidate the baseline; identical lines in
one file are matched multiset-style (two identical grandfathered lines
absorb two findings, not an unlimited number).

File format — one tab-separated entry per line, ``#`` comments and
blank lines ignored::

    rule-name<TAB>path/to/file.py<TAB>the offending source line, stripped

Regenerate with ``repro-er lint --write-baseline`` after a deliberate
decision to grandfather the current findings (code review applies: the
diff of the baseline file *is* the list of newly accepted violations).
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from typing import Iterable

from .findings import Finding


class Baseline:
    """The accepted-findings multiset."""

    def __init__(self, entries: "Iterable[tuple[str, str, str]]" = ()):
        self._entries: Counter = Counter(entries)

    def __len__(self) -> int:
        return sum(self._entries.values())

    @staticmethod
    def _key(finding: Finding, line_text: str) -> tuple[str, str, str]:
        return (finding.rule, finding.path, line_text.strip())

    def match(self, finding: Finding, line_text: str) -> bool:
        """Consume one baseline entry for ``finding`` if present."""
        key = self._key(finding, line_text)
        if self._entries.get(key, 0) > 0:
            self._entries[key] -= 1
            return True
        return False


def load_baseline(path: "Path | str") -> Baseline:
    """Parse a baseline file; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return Baseline()
    entries: list[tuple[str, str, str]] = []
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t")
        if len(parts) != 3:
            raise ValueError(
                f"{path}: malformed baseline entry {raw!r} "
                "(expected rule<TAB>path<TAB>source line)"
            )
        entries.append((parts[0], parts[1], parts[2].strip()))
    return Baseline(entries)


def write_baseline(
    path: "Path | str", findings: "Iterable[tuple[Finding, str]]"
) -> int:
    """Write ``(finding, source line)`` pairs as the new baseline.

    Returns the number of entries written.  Entries are sorted so the
    file diffs cleanly.
    """
    entries = sorted(
        (finding.rule, finding.path, line_text.strip())
        for finding, line_text in findings
    )
    lines = [
        "# repro-er lint baseline — grandfathered findings.",
        "# One entry per accepted finding: rule<TAB>path<TAB>source line.",
        "# Regenerate with: repro-er lint --write-baseline",
        "",
        *("\t".join(entry) for entry in entries),
    ]
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
    return len(entries)
