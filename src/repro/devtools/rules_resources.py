"""Resource-hygiene rule: files, sockets and memory maps get closed.

``unclosed-resource`` flags a call that acquires an OS resource —
``open``/``io.open``/``gzip.open``/``socket.socket``/
``socket.create_connection``/``mmap.mmap``/``tempfile.*`` — unless the
code visibly hands ownership somewhere:

* the call is a ``with`` context expression (directly or wrapped, e.g.
  ``with closing(socket.socket()) as s:``);
* the result is returned (the caller owns it);
* the result is stored on ``self`` (the object's ``close`` owns it);
* the result is bound to a local name that is ``.close()``d somewhere
  in the same function (a ``try``/``finally`` close counts — the rule
  does not prove the ``finally``, it checks the close exists).

``json.load(open(path))`` — the classic leak-on-CPython-only idiom —
is flagged: the call result goes into another call and nobody closes.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .context import ModuleContext
from .findings import Finding
from .registry import register_rule

#: Qualified call targets that acquire an OS resource.
RESOURCE_CTORS = {
    "open", "io.open", "gzip.open", "bz2.open", "lzma.open",
    "socket.socket", "socket.create_connection",
    "mmap.mmap",
    "tempfile.TemporaryFile", "tempfile.NamedTemporaryFile",
}


def _enclosing_function(module: ModuleContext, node: ast.AST) -> ast.AST:
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return module.tree


def _name_is_owned(scope: ast.AST, name: str) -> bool:
    """Whether ``name`` is visibly owned somewhere in ``scope``: it is
    ``.close()``d, used as a ``with`` context, wrapped by a ``with``
    helper (``closing(f)``), returned, or stored on an object."""
    for node in ast.walk(scope):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "close"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name
        ):
            return True
        if (
            isinstance(node, ast.Return)
            and isinstance(node.value, ast.Name)
            and node.value.id == name
        ):
            return True
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Name):
            if node.value.id == name and any(
                isinstance(target, ast.Attribute) for target in node.targets
            ):
                return True  # ``self.sock = sock``
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Name) and expr.id == name:
                    return True
                if (
                    isinstance(expr, ast.Call)
                    and any(
                        isinstance(arg, ast.Name) and arg.id == name
                        for arg in expr.args
                    )
                ):
                    return True  # ``with closing(f):``
    return False


def _is_owned(module: ModuleContext, call: ast.Call) -> bool:
    """Whether the resource produced by ``call`` has a visible owner."""
    for ancestor in module.ancestors(call):
        if isinstance(ancestor, ast.withitem):
            return True
        if isinstance(ancestor, ast.Return):
            # Only a *direct* return hands the caller the resource;
            # ``return json.load(open(p))`` returns the parse, leaks
            # the file.
            return ancestor.value is call
        if isinstance(ancestor, ast.Assign):
            scope = _enclosing_function(module, ancestor)
            for target in ancestor.targets:
                if isinstance(target, ast.Attribute):
                    return True  # stored on an object; its close owns it
                if isinstance(target, ast.Name) and _name_is_owned(
                    scope, target.id
                ):
                    return True
            return False
        if isinstance(
            ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return False
    return False


@register_rule(
    "unclosed-resource",
    family="resource-hygiene",
    description="open()/socket/mmap without 'with', close() or owner",
)
def check_unclosed_resource(module: ModuleContext) -> "Iterator[Finding]":
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        qualified = module.qualified_name(node.func)
        if qualified not in RESOURCE_CTORS:
            continue
        if _is_owned(module, node):
            continue
        yield Finding(
            path=module.display_path,
            line=node.lineno,
            col=node.col_offset,
            rule="unclosed-resource",
            message=(
                f"{qualified}() acquires an OS resource with no visible "
                "owner: use 'with', close() it in a finally, store it on "
                "an object that closes it, or return it"
            ),
        )
