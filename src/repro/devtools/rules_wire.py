"""Wire-protocol rules: authenticate before unpickling, ship names not code.

The transport's security story rests on two invariants:

* **Token before pickle** — every accept path reads the raw token
  preamble (``recv_raw``) and checks it with
  ``secrets.compare_digest`` *before* the first ``recv()`` (which
  unpickles).  An unauthenticated peer must never get bytes into
  ``pickle.loads``.  ``unpickle-before-auth`` checks the ordering
  inside every function that performs the digest comparison.

* **The task map ships names, not code** — workers map the wire names
  ``"map"``/``"reduce"`` to the module-level functions
  ``execute_map_task``/``execute_reduce_task`` (``TASK_UNITS`` in
  ``repro.worker``; the driver-side mirror ``_UNIT_NAMES``).
  ``task-whitelist`` pins both registries to exactly those whitelisted
  module-level names: a lambda, call result, attribute lookup or
  unlisted function in the map would widen what a driver can make a
  worker execute.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .context import ModuleContext
from .findings import Finding
from .registry import register_rule

#: The only functions the worker task registries may reference.
ALLOWED_TASK_UNITS = {"execute_map_task", "execute_reduce_task"}
#: Module-level names that *are* task registries.
TASK_REGISTRY_NAMES = {"TASK_UNITS", "_UNIT_NAMES"}
#: The receive method that unpickles (vs ``recv_raw``, which does not).
UNPICKLING_RECV = "recv"


def _first_digest_line(function: ast.AST) -> "int | None":
    """Line of the first ``compare_digest`` call inside ``function``."""
    best: "int | None" = None
    for node in ast.walk(function):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "compare_digest"
        ):
            if best is None or node.lineno < best:
                best = node.lineno
    return best


@register_rule(
    "unpickle-before-auth",
    family="wire-protocol",
    description="recv() (which unpickles) before the token digest check",
)
def check_unpickle_before_auth(module: ModuleContext) -> "Iterator[Finding]":
    for function in ast.walk(module.tree):
        if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        digest_line = _first_digest_line(function)
        if digest_line is None:
            continue  # not an authentication path
        for node in ast.walk(function):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == UNPICKLING_RECV
                and node.lineno < digest_line
            ):
                yield Finding(
                    path=module.display_path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="unpickle-before-auth",
                    message=(
                        f"{ast.unparse(node.func)}() unpickles, but the "
                        f"token check (compare_digest, line {digest_line}) "
                        "has not run yet; read the raw preamble with "
                        "recv_raw() and verify it first"
                    ),
                )


def _module_level_functions(module: ModuleContext) -> set[str]:
    """Names bound at module level to defs or imports (pickle-by-name
    safe and auditable)."""
    names = set(module.imports)
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
    return names


@register_rule(
    "task-whitelist",
    family="wire-protocol",
    description="worker task registry references a non-whitelisted callable",
)
def check_task_whitelist(module: ModuleContext) -> "Iterator[Finding]":
    module_level = _module_level_functions(module)
    for node in module.tree.body:
        targets: list[ast.AST] = []
        value: "ast.AST | None" = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value = [node.target], node.value
        is_registry = any(
            isinstance(target, ast.Name) and target.id in TASK_REGISTRY_NAMES
            for target in targets
        )
        if not is_registry or not isinstance(value, ast.Dict):
            continue
        registry = next(
            target.id for target in targets if isinstance(target, ast.Name)
        )
        for element in [*value.keys, *value.values]:
            if element is None:
                continue  # ``**splat`` key
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                continue  # the wire name side of the mapping
            ok = (
                isinstance(element, ast.Name)
                and element.id in ALLOWED_TASK_UNITS
                and element.id in module_level
            )
            if ok:
                continue
            yield Finding(
                path=module.display_path,
                line=element.lineno,
                col=element.col_offset,
                rule="task-whitelist",
                message=(
                    f"{registry} may only reference the module-level "
                    f"whitelisted task units "
                    f"({', '.join(sorted(ALLOWED_TASK_UNITS))}); found "
                    f"{ast.unparse(element)!r}"
                ),
            )
