"""Determinism rules: nothing order- or clock-dependent may influence results.

Every backend must produce byte-identical matches, counters and event
streams.  The classic ways to break that silently are iterating an
unordered set into an output, walking a directory in file-system order,
mixing wall-clock or RNG values into result records, and keying
containers by ``id()`` (a memory address — different every run).  These
rules guard the *result-affecting* packages: ``core``, ``er``,
``mapreduce``, ``engine`` and ``io``.  Scheduling-only code (``serve``,
``worker``, ``cli``, ``analysis``) may use clocks freely and is out of
scope; ``time.monotonic`` is always allowed (timeouts do not shape
results — results merged in task-index order are timing-independent).
"""

from __future__ import annotations

import ast
from typing import Iterator

from .context import ModuleContext
from .findings import Finding
from .registry import register_rule

#: Package-relative path prefixes whose modules shape results.
RESULT_AFFECTING = ("core/", "er/", "mapreduce/", "engine/", "io/")

#: Dotted call targets whose values differ from run to run.
NONDETERMINISTIC_CALLS = {
    "random.random", "random.randint", "random.randrange", "random.choice",
    "random.choices", "random.shuffle", "random.sample", "random.uniform",
    "random.getrandbits",
    "uuid.uuid1", "uuid.uuid4",
    "time.time", "time.time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow", "datetime.date.today",
    "os.urandom", "os.getpid",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbelow",
}

#: Directory-walk calls whose order is file-system dependent.
UNSORTED_WALKS = {"os.listdir", "os.scandir", "os.walk", "glob.glob", "glob.iglob"}
#: Method names with the same hazard on Path objects.
UNSORTED_WALK_METHODS = {"iterdir", "glob", "rglob"}


def _in_scope(module: ModuleContext) -> bool:
    relpath = module.package_relpath()
    if relpath is None:
        return True  # loose files (fixtures) are always checked
    return relpath.startswith(RESULT_AFFECTING)


def _inside_sorted(module: ModuleContext, node: ast.AST) -> bool:
    """Whether ``node`` is an immediate argument of ``sorted(...)`` (or
    feeds an explicitly ordering consumer: ``min``/``max``/``sum``/
    ``len``/``set``/``frozenset``/membership tests)."""
    parent = module.parent(node)
    if isinstance(parent, ast.Starred):
        parent = module.parent(parent)
    if isinstance(parent, ast.Call):
        callee = parent.func
        if isinstance(callee, ast.Name) and callee.id in (
            "sorted", "min", "max", "sum", "len", "set", "frozenset", "any",
            "all",
        ):
            return True
    if isinstance(parent, ast.Compare):
        # Membership tests (``x in names``) do not observe order.
        return any(isinstance(op, (ast.In, ast.NotIn)) for op in parent.ops)
    return False


def _is_set_expression(node: ast.AST, set_names: set[str]) -> bool:
    """Whether ``node`` evaluates to a set, as far as local syntax shows."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        # ``a & b`` etc. is a set when either side is known to be one.
        return _is_set_expression(node.left, set_names) or _is_set_expression(
            node.right, set_names
        )
    return False


def _local_set_names(function: ast.AST) -> set[str]:
    """Names bound to set-valued expressions inside one function body."""
    names: set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Assign) and _is_set_expression(node.value, names):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            annotation = ast.unparse(node.annotation)
            if annotation.startswith(("set", "frozenset", "Set", "FrozenSet")):
                names.add(node.target.id)
    return names


def _iteration_sites(function: ast.AST) -> "Iterator[ast.AST]":
    """Every expression iterated by a for/comprehension in ``function``,
    excluding nested function bodies (they get their own visit)."""
    stack = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            # A *set* comprehension's own iteration lands in a set
            # anyway; list/dict/generator outputs preserve order.
            for generator in node.generators:
                yield generator.iter
        stack.extend(ast.iter_child_nodes(node))


@register_rule(
    "set-iteration",
    family="determinism",
    description="iterating a set into an ordered result (wrap in sorted())",
)
def check_set_iteration(module: ModuleContext) -> "Iterator[Finding]":
    if not _in_scope(module):
        return
    functions = [
        node
        for node in ast.walk(module.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    functions.append(module.tree)  # module-level loops count too
    for function in functions:
        set_names = _local_set_names(function)
        for iterated in _iteration_sites(function):
            if not _is_set_expression(iterated, set_names):
                continue
            if _inside_sorted(module, iterated):
                continue
            yield Finding(
                path=module.display_path,
                line=iterated.lineno,
                col=iterated.col_offset,
                rule="set-iteration",
                message=(
                    f"iteration over the set {ast.unparse(iterated)!r} has "
                    "no deterministic order; wrap it in sorted(...)"
                ),
            )


@register_rule(
    "unsorted-dir-walk",
    family="determinism",
    description="directory listing order is file-system dependent "
    "(wrap in sorted())",
)
def check_unsorted_walk(module: ModuleContext) -> "Iterator[Finding]":
    if not _in_scope(module):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        qualified = module.qualified_name(node.func)
        method = (
            node.func.attr if isinstance(node.func, ast.Attribute) else None
        )
        if qualified in UNSORTED_WALKS or method in UNSORTED_WALK_METHODS:
            if _inside_sorted(module, node):
                continue
            name = qualified or f"<obj>.{method}"
            yield Finding(
                path=module.display_path,
                line=node.lineno,
                col=node.col_offset,
                rule="unsorted-dir-walk",
                message=(
                    f"{name}() yields entries in file-system order; wrap "
                    "the call in sorted(...) before results depend on it"
                ),
            )


@register_rule(
    "nondeterministic-call",
    family="determinism",
    description="clock/RNG-derived value inside a result-affecting module",
)
def check_nondeterministic_call(module: ModuleContext) -> "Iterator[Finding]":
    if not _in_scope(module):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        qualified = module.qualified_name(node.func)
        if qualified in NONDETERMINISTIC_CALLS:
            yield Finding(
                path=module.display_path,
                line=node.lineno,
                col=node.col_offset,
                rule="nondeterministic-call",
                message=(
                    f"{qualified}() differs between runs; result-affecting "
                    "modules must derive values only from their inputs "
                    "(use a seeded random.Random or pass the value in)"
                ),
            )


@register_rule(
    "id-keyed-container",
    family="determinism",
    description="id()-keyed containers vary with memory layout",
)
def check_id_keyed(module: ModuleContext) -> "Iterator[Finding]":
    if not _in_scope(module):
        return
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
            and len(node.args) == 1
        ):
            yield Finding(
                path=module.display_path,
                line=node.lineno,
                col=node.col_offset,
                rule="id-keyed-container",
                message=(
                    "id() is a memory address — different every run; key "
                    "containers by a stable identifier instead"
                ),
            )
