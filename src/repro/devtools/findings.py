"""The unit of lint output: one finding, at one line of one file."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, slots=True, order=True)
class Finding:
    """One rule violation.

    ``path`` is stored as given by the runner (repo-relative when the
    lint target is inside the working tree, so baselines and ``--json``
    output are machine-independent).  ``line`` is 1-based, ``col``
    0-based, both pointing at the offending AST node.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """The one-line text form: ``path:line:col: rule: message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def to_json(self) -> dict[str, Any]:
        """The stable ``--json`` schema of one finding."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
