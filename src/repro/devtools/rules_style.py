"""Style-invariant rules: no runtime asserts, no silent exception swallows.

``no-runtime-assert`` — ``assert`` vanishes under ``python -O``, so an
assert guarding a runtime invariant is a check that production can
silently skip.  Library code raises ``RuntimeError``/``ValueError``
with a message instead; ``assert`` belongs in tests (which this linter
does not target by default).

``silent-except`` — ``except Exception:`` (or a bare ``except:``)
whose handler never re-raises hides real faults: a typo in the handler
path, a ``KeyboardInterrupt`` subclass leak, an auth failure read as a
clean disconnect.  Narrow the exception type, re-raise, or — when the
broad catch is deliberate (a reaper loop that must survive anything) —
suppress with ``# repro-lint: disable=silent-except`` *and a comment
saying why*.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .context import ModuleContext
from .findings import Finding
from .registry import register_rule

#: Exception names considered "catches everything".
BROAD_EXCEPTIONS = {"Exception", "BaseException"}


@register_rule(
    "no-runtime-assert",
    family="style",
    description="assert statements vanish under python -O; raise instead",
)
def check_no_runtime_assert(module: ModuleContext) -> "Iterator[Finding]":
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Assert):
            yield Finding(
                path=module.display_path,
                line=node.lineno,
                col=node.col_offset,
                rule="no-runtime-assert",
                message=(
                    "assert is compiled out under python -O; raise "
                    "RuntimeError/ValueError with a message instead"
                ),
            )


def _broad_exception_names(handler: ast.ExceptHandler) -> list[str]:
    """The broad names this handler catches ([] when it is narrow)."""
    if handler.type is None:
        return ["<bare except>"]
    exceptions = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    broad = []
    for exception in exceptions:
        if isinstance(exception, ast.Name) and exception.id in BROAD_EXCEPTIONS:
            broad.append(exception.id)
    return broad


def _swallows(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body can complete without re-raising."""
    return not any(
        isinstance(node, ast.Raise) for node in ast.walk(handler)
    )


@register_rule(
    "silent-except",
    family="style",
    description="'except Exception:' that never re-raises hides faults",
)
def check_silent_except(module: ModuleContext) -> "Iterator[Finding]":
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        broad = _broad_exception_names(node)
        if not broad or not _swallows(node):
            continue
        yield Finding(
            path=module.display_path,
            line=node.lineno,
            col=node.col_offset,
            rule="silent-except",
            message=(
                f"{'/'.join(broad)} is caught and never re-raised; "
                "narrow the exception type, or justify the broad catch "
                "with a comment and a disable pragma"
            ),
        )
