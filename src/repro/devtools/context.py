"""Per-file and project-wide analysis context.

:class:`ModuleContext` wraps one parsed source file: the ``ast`` tree
with parent links, the comment table from ``tokenize`` (which is where
``# repro-lint:`` pragmas and the ``# guarded-by:`` / ``# holds-lock:``
lock annotations live), the ``symtable`` (lazily built — it is the one
stdlib facility that knows a nested function's *free variables*, i.e.
whether it is a closure), and the module-level import map rules use to
resolve names like ``threading.Lock`` no matter how they were imported.

:class:`ProjectContext` holds every module of one lint run plus a class
index, so project-scoped rules (pickle-safety reachability) can chase
names across files.
"""

from __future__ import annotations

import ast
import io
import symtable
import tokenize
from pathlib import Path

#: Pragma vocabulary, all carried in comments:
#:   # repro-lint: disable=rule-a,rule-b      (this line / next line)
#:   # repro-lint: disable-file=rule-a        (whole file)
#:   # repro-lint: wire-root                  (extra pickle-reachability seed)
PRAGMA_PREFIX = "repro-lint:"
#: Lock-annotation vocabulary (see docs/lint.md):
#:   self._jobs: dict = {}   # guarded-by: _lock
#:   def _retire(self):      # holds-lock: _lock
GUARDED_BY = "guarded-by:"
HOLDS_LOCK = "holds-lock:"


def _rule_list(payload: str) -> list[str]:
    """The comma-separated rule names at the head of a pragma payload.

    Everything after the first whitespace is justification prose:
    ``disable=silent-except -- reaper loop must survive anything``
    disables exactly ``silent-except``.  (Hence: no spaces inside the
    rule list itself.)
    """
    head = payload.split(None, 1)[0] if payload.split() else ""
    return [rule.strip() for rule in head.split(",") if rule.strip()]


def _parse_comment_directive(comment: str, key: str) -> "str | None":
    """The payload of ``key`` inside a comment, or ``None``.

    ``# guarded-by: _lock`` → ``"_lock"``; tolerant of extra prose
    after the payload only for pragma lists (the caller splits).
    """
    text = comment.lstrip("#").strip()
    if not text.startswith(key):
        return None
    return text[len(key):].strip()


class ModuleContext:
    """One parsed source file plus everything rules ask about it."""

    def __init__(self, path: Path, source: str, *, root: "Path | None" = None):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.dotted_name = self._dotted_name(path)
        #: Repo-relative display path (what findings carry).
        self.display_path = str(path)
        if root is not None:
            try:
                self.display_path = str(path.relative_to(root))
            except ValueError:
                pass
        self._parents: dict[int, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
        #: line -> list of comment strings on that line.
        self.comments: dict[int, list[str]] = {}
        #: lines where the comment is the only content (standalone).
        self._standalone_comments: set[int] = set()
        self._scan_comments()
        self._file_disabled: set[str] = set()
        self._line_disabled: dict[int, set[str]] = {}
        #: Lines carrying a ``# repro-lint: wire-root`` marker.
        self.wire_root_lines: set[int] = set()
        #: line -> lock name from a ``# guarded-by:`` annotation.
        self.guarded_by: dict[int, str] = {}
        #: line -> lock name from a ``# holds-lock:`` annotation.
        self.holds_lock: dict[int, str] = {}
        self._scan_directives()
        self._symtable: "symtable.SymbolTable | None" = None
        self.imports = _module_imports(self.tree, self.dotted_name)

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def _dotted_name(path: Path) -> "str | None":
        """``repro.serve.pool`` for files inside a package, else None."""
        try:
            resolved = path.resolve()
        except OSError:
            return None
        if resolved.suffix != ".py":
            return None
        parts = [resolved.stem] if resolved.stem != "__init__" else []
        package = resolved.parent
        while (package / "__init__.py").exists():
            parts.insert(0, package.name)
            package = package.parent
        return ".".join(parts) if parts else None

    def _scan_comments(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                line = token.start[0]
                self.comments.setdefault(line, []).append(token.string)
                before = self.lines[line - 1][: token.start[1]]
                if not before.strip():
                    self._standalone_comments.add(line)
        except tokenize.TokenError:
            # A file that parses but will not tokenize cleanly keeps
            # its AST-based findings; only comment pragmas are lost.
            return

    def _scan_directives(self) -> None:
        for line, comments in self.comments.items():
            for comment in comments:
                guarded = _parse_comment_directive(comment, GUARDED_BY)
                if guarded:
                    self.guarded_by[line] = guarded.split()[0]
                holds = _parse_comment_directive(comment, HOLDS_LOCK)
                if holds:
                    self.holds_lock[line] = holds.split()[0]
                pragma = _parse_comment_directive(comment, PRAGMA_PREFIX)
                if pragma is None:
                    continue
                if pragma.startswith("disable-file="):
                    rules = _rule_list(pragma[len("disable-file="):])
                    self._file_disabled.update(rules)
                elif pragma.startswith("disable="):
                    rules = set(_rule_list(pragma[len("disable="):]))
                    targets = [line]
                    if line in self._standalone_comments:
                        # A pragma on a line of its own covers the next
                        # line (the statement it annotates).
                        targets.append(line + 1)
                    for target in targets:
                        self._line_disabled.setdefault(target, set()).update(rules)
                elif pragma == "wire-root":
                    self.wire_root_lines.add(line)

    # -- what rules ask -------------------------------------------------------

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether a pragma disables ``rule`` at ``line``."""
        if rule in self._file_disabled:
            return True
        return rule in self._line_disabled.get(line, set())

    def parent(self, node: ast.AST) -> "ast.AST | None":
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST):
        """The chain of enclosing nodes, innermost first."""
        current = self._parents.get(id(node))
        while current is not None:
            yield current
            current = self._parents.get(id(current))

    def symbol_table(self) -> "symtable.SymbolTable | None":
        """The module's ``symtable`` (lazily built, None if it fails)."""
        if self._symtable is None:
            try:
                self._symtable = symtable.symtable(
                    self.source, str(self.path), "exec"
                )
            except (SyntaxError, ValueError):
                return None
        return self._symtable

    def qualified_name(self, node: ast.AST) -> "str | None":
        """Resolve a Name/Attribute chain through the import map.

        ``Lock`` imported via ``from threading import Lock`` resolves
        to ``"threading.Lock"``; ``t.Lock`` under ``import threading as
        t`` likewise.  Returns ``None`` for anything that is not a
        plain dotted chain.
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.insert(0, current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        head = self.imports.get(current.id, current.id)
        return ".".join([head, *parts])

    def package_relpath(self) -> "str | None":
        """Path relative to the innermost package root, ``/``-joined
        (``serve/pool.py``), or None for files outside any package."""
        if self.dotted_name is None or "." not in self.dotted_name:
            return None
        return "/".join(self.dotted_name.split(".")[1:]) + ".py"

    def __repr__(self) -> str:
        return f"ModuleContext({self.display_path!r})"


def _module_imports(tree: ast.Module, dotted: "str | None") -> dict[str, str]:
    """Local name -> fully qualified dotted name, module level only."""
    imports: dict[str, str] = {}
    package_parts = dotted.split(".")[:-1] if dotted else []
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    # ``import x.y`` binds the top-level name ``x``.
                    top = alias.name.split(".")[0]
                    imports[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                if not package_parts or node.level > len(package_parts):
                    # Relative import with no resolvable package (e.g. a
                    # loose file): the names are still bound at module
                    # level, which is what most rules ask about.
                    base = node.module or ""
                else:
                    base_parts = package_parts[: len(package_parts) - node.level + 1]
                    base = ".".join(
                        base_parts + ([node.module] if node.module else [])
                    )
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}" if base else alias.name
    return imports


class ProjectContext:
    """Every module of one lint run, plus cross-file indexes."""

    def __init__(self, modules: list[ModuleContext]):
        self.modules = modules
        #: (dotted module name, class name) -> (module, ClassDef).
        self.classes: dict[tuple[str, str], tuple[ModuleContext, ast.ClassDef]] = {}
        #: dotted module name -> module.
        self.by_name: dict[str, ModuleContext] = {}
        for module in modules:
            if module.dotted_name is None:
                continue
            self.by_name[module.dotted_name] = module
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    self.classes[(module.dotted_name, node.name)] = (module, node)

    def resolve_class(
        self, module: ModuleContext, name_node: ast.AST
    ) -> "tuple[ModuleContext, ast.ClassDef] | None":
        """The project class a Name/Attribute in ``module`` refers to."""
        qualified = module.qualified_name(name_node)
        if qualified is None:
            return None
        head, _, tail = qualified.rpartition(".")
        if not head:
            # A bare local name: a class defined in this module?
            if module.dotted_name is not None:
                return self.classes.get((module.dotted_name, qualified))
            for key, value in self.classes.items():
                if key[1] == qualified and value[0] is module:
                    return value
            return None
        found = self.classes.get((head, tail))
        if found is not None:
            return found
        # ``from pkg import module`` followed by ``module.Class``.
        return self.classes.get((qualified.rpartition(".")[0], tail))
