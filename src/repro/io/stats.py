"""Shard-level block statistics — the streaming stand-in for Job 1.

A :class:`~repro.io.sources.RecordSource` can report, per shard, how
many of its records fall into each block *without* holding any records
in memory.  Those ``(block key, shard index) → count`` triples are
precisely what the paper's Job 1 (Algorithm 3) computes, so a single
streaming pass yields the full block distribution matrix: the planned
backend and the ``recommend`` CLI run BlockSplit/PairRange enumeration
over inputs that were never materialized.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from ..core.bdm import BlockDistributionMatrix, analytic_bdm_from_counts
from ..er.blocking import BlockKey


@dataclass(frozen=True)
class ShardBlockStats:
    """One streaming pass's worth of per-shard block counts.

    ``block_counts`` maps ``(block key, shard index)`` to the number of
    records of that block observed in that shard; ``shard_records``
    holds the raw record count per shard (including records without a
    blocking key, which Job 1 would skip); ``missing_key_records`` is
    the total of those skipped records.
    """

    block_counts: Mapping[tuple[BlockKey, int], int]
    shard_records: tuple[int, ...]
    missing_key_records: int = 0

    def __post_init__(self) -> None:
        # Freeze the mapping so stats objects are safe to share.
        object.__setattr__(
            self, "block_counts", MappingProxyType(dict(self.block_counts))
        )
        for (key, shard), count in self.block_counts.items():
            if not 0 <= shard < self.num_shards:
                raise ValueError(
                    f"block {key!r} reports shard {shard}, outside "
                    f"[0, {self.num_shards})"
                )
            if count <= 0:
                raise ValueError(f"non-positive count for block {key!r}")

    @property
    def num_shards(self) -> int:
        return len(self.shard_records)

    @property
    def num_blocks(self) -> int:
        return len({key for key, _ in self.block_counts})

    def total_records(self) -> int:
        return sum(self.shard_records)

    def keyed_records(self) -> int:
        return sum(self.block_counts.values())

    def to_bdm(self) -> BlockDistributionMatrix:
        """The block distribution matrix these counts define.

        Identical to running :func:`~repro.core.bdm.analytic_bdm` over
        the materialized shards — one shard per input partition.
        """
        return analytic_bdm_from_counts(self.block_counts, self.num_shards)

    def __repr__(self) -> str:
        return (
            f"ShardBlockStats(shards={self.num_shards}, "
            f"blocks={self.num_blocks}, records={self.total_records()})"
        )
