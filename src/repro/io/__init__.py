"""Streaming input layer: sharded record sources and their statistics.

This package decouples *input representation* from *execution backend*
(see ``docs/architecture.md``): a :class:`RecordSource` presents any
input — an in-memory list, CSV shards on disk, memory-mapped columnar
datasets (``repro-er pack``), or arbitrary generators —
as an ordered sequence of shards, and reports per-shard block counts
in one streaming pass.  ``ERPipeline.run()`` accepts a source wherever
it accepts an entity list; executing backends materialize shards one at
a time, while the planned backend consumes only the streamed statistics
and never materializes records at all.
"""

from .columnar import ColumnarShardSource, write_columnar
from .sources import (
    CsvShardSource,
    GeneratorSource,
    InMemorySource,
    RecordSource,
    shard_bounds,
)
from .stats import ShardBlockStats

__all__ = [
    "ColumnarShardSource",
    "CsvShardSource",
    "GeneratorSource",
    "InMemorySource",
    "RecordSource",
    "ShardBlockStats",
    "shard_bounds",
    "write_columnar",
]
