"""Columnar on-disk shards, memory-mapped for fast loading.

The CSV shard layout parses every row on every pass.  This module
stores the same datasets *by column* in a fixed binary layout so a
:class:`ColumnarShardSource` can serve shards straight out of
``mmap``-ed files — no per-row parsing, no full-file read up front.

Layout (version 1)
------------------

A columnar dataset is a directory::

    dataset/
        manifest.json   # format tag, version, column names, shard sizes
        0.col           # the _id column
        1.col           # the _source column
        2.col ...       # one file per attribute, in manifest order

Every column file holds one string per record, all shards concatenated
in shard order:

* bytes ``0..8`` — record count ``n`` as a little-endian ``u64``;
* bytes ``8..8+(n+1)*8`` — ``n+1`` little-endian ``u64`` offsets into
  the payload, measured in *code points* (``offsets[0] == 0``; value
  ``i`` spans ``offsets[i]..offsets[i+1]``);
* the rest — the payload: every value concatenated, encoded as
  UTF-32-LE (one fixed-width ``u32`` per code point).

Fixed-width code points are what make the format kernel-friendly: with
numpy available the payload region is viewable as a ``uint32`` array
without copying, and the offsets region as a ``uint64`` array, so
lengths and slices come straight off the map.  The stdlib path wraps
the same bytes in :mod:`array` arrays instead.

Null semantics mirror the CSV round-trip exactly: a missing attribute
(``None``) is stored as the empty string, and an empty string loads
back as ``None`` — so packing a CSV dataset and reading it back yields
byte-identical entities to :class:`~repro.io.CsvShardSource`.  The
reserved ``_id``/``_source`` columns are stored verbatim.

Sources built on this layout pickle safely (the serve layer ships
sources to workers): the memory maps are dropped on ``__getstate__``
and reopened lazily on first use in the receiving process.
"""

from __future__ import annotations

import json
import mmap
import struct
import sys
from array import array
from pathlib import Path
from typing import Iterator, Sequence

from ..er.batch_kernel import active_numpy
from ..er.entity import Entity
from .sources import RecordSource

MANIFEST_NAME = "manifest.json"
FORMAT_TAG = "repro-er/columnar"
FORMAT_VERSION = 1

_ID_COLUMN = "_id"
_SOURCE_COLUMN = "_source"
_HEADER = struct.Struct("<Q")


def write_columnar(
    source: RecordSource | Sequence[Entity], out_dir: str | Path
) -> Path:
    """Pack a record source (or entity list) into a columnar dataset.

    Shard boundaries are preserved: shard ``i`` of the written dataset
    holds exactly the records of shard ``i`` of ``source`` (an entity
    list becomes a single shard).  The attribute column set is the
    union across entities in first-appearance order, as in
    :func:`~repro.datasets.loaders.save_entities_csv`; missing
    attributes are stored as empty strings (→ ``None`` on read).

    Refuses to overwrite an existing columnar dataset.  Returns the
    dataset directory.
    """
    out_dir = Path(out_dir)
    manifest_path = out_dir / MANIFEST_NAME
    if manifest_path.exists():
        raise ValueError(
            f"{out_dir} already holds a columnar dataset "
            "(remove it first to re-pack)"
        )
    if isinstance(source, RecordSource):
        shard_iter = source.iter_shards()
    else:
        shard_iter = iter([iter(source)])

    # One streaming pass: per-column value lists, new columns backfilled
    # with None for the rows seen before their first appearance.
    ids: list[str] = []
    sources: list[str] = []
    attr_columns: dict[str, list[str | None]] = {}
    shard_sizes: list[int] = []
    for shard in shard_iter:
        count = 0
        for entity in shard:
            for name in entity.attributes:
                if name in (_ID_COLUMN, _SOURCE_COLUMN):
                    raise ValueError(
                        f"attribute names {_ID_COLUMN!r}/{_SOURCE_COLUMN!r} "
                        "are reserved"
                    )
                if name not in attr_columns:
                    attr_columns[name] = [None] * len(ids)
            ids.append(entity.entity_id)
            sources.append(entity.source)
            for name, values in attr_columns.items():
                value = entity.get(name)
                values.append(None if value is None else str(value))
            count += 1
        shard_sizes.append(count)
    if not ids:
        raise ValueError("cannot pack an empty dataset")

    out_dir.mkdir(parents=True, exist_ok=True)
    columns = [_ID_COLUMN, _SOURCE_COLUMN, *attr_columns]
    for index, name in enumerate(columns):
        if name == _ID_COLUMN:
            values: Sequence[str | None] = ids
        elif name == _SOURCE_COLUMN:
            values = sources
        else:
            values = attr_columns[name]
        _write_column(out_dir / f"{index}.col", values)
    manifest = {
        "format": FORMAT_TAG,
        "version": FORMAT_VERSION,
        "records": len(ids),
        "columns": columns,
        "shards": shard_sizes,
    }
    manifest_path.write_text(
        json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
    )
    return out_dir


def _write_column(path: Path, values: Sequence[str | None]) -> None:
    offsets = array("Q", [0] * (len(values) + 1))
    total = 0
    for i, value in enumerate(values):
        if value:
            total += len(value)
        offsets[i + 1] = total
    if sys.byteorder == "big":
        offsets = offsets[:]
        offsets.byteswap()
    with path.open("wb") as handle:
        handle.write(_HEADER.pack(len(values)))
        handle.write(offsets.tobytes())
        for value in values:
            if value:
                handle.write(value.encode("utf-32-le"))


class _Column:
    """One mmap-ed column file: lazy offsets + payload views."""

    __slots__ = ("_file", "_map", "_offsets", "_payload", "count")

    def __init__(self, path: Path, expected_count: int):
        self._file = path.open("rb")
        try:
            self._map = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError:
            self._file.close()
            raise ValueError(f"{path}: truncated or corrupt column file") from None
        self._offsets = None
        self._payload = None
        # Validate through transient reads only (struct.unpack_from
        # holds no lasting buffer export), so a corrupt file can be
        # rejected — and the map closed — without dangling views.
        size = len(self._map)
        n = offsets_end = 0
        ok = size >= _HEADER.size
        if ok:
            (n,) = _HEADER.unpack_from(self._map, 0)
            offsets_end = _HEADER.size + (n + 1) * 8
            ok = n == expected_count and size >= offsets_end
        if ok:
            (first,) = struct.unpack_from("<Q", self._map, _HEADER.size)
            (last,) = struct.unpack_from("<Q", self._map, _HEADER.size + n * 8)
            ok = first == 0 and size == offsets_end + last * 4
        if not ok:
            self.close()
            raise ValueError(f"{path}: truncated or corrupt column file")
        view = memoryview(self._map)
        offsets_bytes = view[_HEADER.size : offsets_end]
        np = active_numpy()
        if np is not None:
            offsets = np.frombuffer(offsets_bytes, dtype="<u8")
        else:
            offsets = array("Q")
            offsets.frombytes(offsets_bytes.tobytes())
            if sys.byteorder == "big":
                offsets.byteswap()
            offsets_bytes.release()
        view.release()
        self._offsets = offsets
        self._payload = memoryview(self._map)[offsets_end:]
        self.count = n

    def decode_range(self, start: int, stop: int) -> list[str]:
        """The values of rows ``start..stop`` as one list of strings.

        One ``utf-32-le`` decode covers the whole row range (a single C
        call instead of one per value — the difference between beating
        and losing to the C ``csv`` parser), then each value is a plain
        string slice at its code-point offsets.
        """
        offs = self._offsets[start : stop + 1].tolist()
        base = offs[0]
        text = str(self._payload[base * 4 : offs[-1] * 4], "utf-32-le")
        return [text[a - base : b - base] for a, b in zip(offs, offs[1:])]

    def close(self) -> None:
        # Every buffer export must be dropped before the map can close:
        # the payload slice, and (on the numpy path) the offsets array
        # viewing the offsets region.
        self._offsets = None
        if self._payload is not None:
            self._payload.release()
            self._payload = None
        self._map.close()
        self._file.close()


class ColumnarShardSource(RecordSource):
    """Shards served from a columnar dataset directory (see module doc).

    The manifest is read eagerly (shape and shard sizes are known
    without touching the column files); the columns themselves are
    memory-mapped lazily on first record access and shared across
    passes.  ``source`` overrides every entity's source tag, as in
    :class:`~repro.io.CsvShardSource`.
    """

    def __init__(self, directory: str | Path, *, source: str | None = None):
        self._directory = Path(directory)
        self._source_tag = source
        manifest_path = self._directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise ValueError(
                f"{self._directory} is not a columnar dataset "
                f"(no {MANIFEST_NAME})"
            )
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{manifest_path}: invalid manifest: {exc}") from None
        if not isinstance(manifest, dict) or manifest.get("format") != FORMAT_TAG:
            raise ValueError(f"{manifest_path}: not a {FORMAT_TAG} manifest")
        version = manifest.get("version")
        if not isinstance(version, int) or version > FORMAT_VERSION:
            raise ValueError(
                f"{manifest_path}: columnar format version {version!r} "
                f"is newer than supported version {FORMAT_VERSION}"
            )
        columns = manifest.get("columns")
        shards = manifest.get("shards")
        if (
            not isinstance(columns, list)
            or columns[:2] != [_ID_COLUMN, _SOURCE_COLUMN]
            or not isinstance(shards, list)
            or not all(isinstance(s, int) and s >= 0 for s in shards)
        ):
            raise ValueError(f"{manifest_path}: malformed manifest")
        self._columns: list[str] = columns
        self._shard_sizes: tuple[int, ...] = tuple(shards)
        self._records: int = sum(self._shard_sizes)
        bounds: list[tuple[int, int]] = []
        start = 0
        for size in self._shard_sizes:
            bounds.append((start, start + size))
            start += size
        self._bounds = bounds
        self._maps: list[_Column] | None = None

    @property
    def num_shards(self) -> int:
        return len(self._shard_sizes)

    def shard_sizes(self) -> tuple[int, ...]:
        return self._shard_sizes

    def iter_shard(self, index: int) -> Iterator[Entity]:
        self._check_shard_index(index)
        start, stop = self._bounds[index]
        columns = self._open()
        # One range decode per column per shard (not one per value) —
        # memory stays bounded by a single shard's worth of strings.
        ids = columns[0].decode_range(start, stop)
        tag = self._source_tag
        tags = None if tag is not None else columns[1].decode_range(start, stop)
        names = self._columns[2:]
        attr_values = [
            column.decode_range(start, stop) for column in columns[2:]
        ]
        for row in range(stop - start):
            attributes = {
                name: (value if (value := values[row]) != "" else None)
                for name, values in zip(names, attr_values)
            }
            yield Entity(ids[row], attributes, tag if tags is None else tags[row])

    def close(self) -> None:
        """Release the memory maps (reopened lazily if used again)."""
        if self._maps is not None:
            for column in self._maps:
                column.close()
            self._maps = None

    def _open(self) -> list[_Column]:
        if self._maps is None:
            maps: list[_Column] = []
            try:
                for index in range(len(self._columns)):
                    path = self._directory / f"{index}.col"
                    if not path.exists():
                        raise ValueError(
                            f"{self._directory}: missing column file {path.name}"
                        )
                    maps.append(_Column(path, self._records))
            except Exception:
                for column in maps:
                    column.close()
                raise
            self._maps = maps
        return self._maps

    # Memory maps cannot cross process boundaries; pickle the
    # configuration only and re-map lazily on the other side (the serve
    # layer ships sources inside pickled requests).
    def __getstate__(self):
        return {"directory": self._directory, "source": self._source_tag}

    def __setstate__(self, state) -> None:
        self.__init__(state["directory"], source=state["source"])

    def __repr__(self) -> str:
        return (
            f"ColumnarShardSource({str(self._directory)!r}, "
            f"shards={self.num_shards})"
        )
