"""Sharded record sources — the input layer behind ``ERPipeline``.

A :class:`RecordSource` abstracts *where the records live* away from
*how they are matched*: it exposes the input as an ordered list of
shards (one shard per map task, mirroring how a DFS splits a file into
input splits) that can be iterated repeatedly, and it can report
shard-level block statistics in a single streaming pass without holding
records in memory.  The executing backends materialize shards one at a
time into :class:`~repro.mapreduce.types.Partition` objects; the
planned backend never materializes at all — it plans BlockSplit and
PairRange straight from the streamed statistics.

Three implementations cover the common cases:

:class:`InMemorySource`
    Wraps a list of entities; shard boundaries follow the same
    contiguous near-equal rule as
    :func:`~repro.mapreduce.types.make_partitions`, so results are
    byte-identical to passing the list directly.
:class:`CsvShardSource`
    Streams one CSV file split into ``num_shards`` contiguous row
    ranges, or a list of CSV files with one shard per file.  Rows are
    parsed lazily; no full materialization ever happens inside the
    source.
:class:`GeneratorSource`
    One zero-argument callable per shard, each returning a fresh
    iterable of entities — the bridge to databases, message queues, or
    synthetic generators.

Sources must be *re-iterable* and *deterministic*: the paper's workflow
reads the same partitioning twice (Job 1 and Job 2 in Section III-A),
so two passes over a shard must yield the same records in the same
order.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from itertools import islice
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from ..datasets.loaders import iter_entities_csv
from ..er.blocking import BlockingFunction
from ..er.entity import Entity

# shard_bounds is the single splitting rule shared with make_partitions
# (re-exported here because sources are its natural call site).
from ..mapreduce.types import Partition, shard_bounds
from .stats import ShardBlockStats


class RecordSource(ABC):
    """An input of entities exposed as an ordered list of shards.

    Subclasses implement :attr:`num_shards` and :meth:`iter_shard`;
    everything else — whole-input iteration, partition materialization,
    and the streaming block-statistics pass — derives from those two.
    """

    @property
    @abstractmethod
    def num_shards(self) -> int:
        """Number of shards (map tasks) this source splits into."""

    @abstractmethod
    def iter_shard(self, index: int) -> Iterator[Entity]:
        """Stream the records of shard ``index`` in stable order."""

    # -- derived API --------------------------------------------------------

    def iter_shards(self) -> Iterator[Iterator[Entity]]:
        """Stream every shard in shard order.

        Consumers must exhaust each yielded shard before advancing to
        the next (as with :func:`itertools.groupby`): sources backed by
        one sequential stream serve consecutive shards from a single
        pass, which is what keeps a full sweep O(n).  All bulk helpers
        below follow that contract.
        """
        for index in range(self.num_shards):
            yield self.iter_shard(index)

    def iter_records(self) -> Iterator[Entity]:
        """Stream all records, shard by shard."""
        for shard in self.iter_shards():
            yield from shard

    def shard_sizes(self) -> tuple[int, ...]:
        """Record count per shard (one streaming pass, nothing retained)."""
        return tuple(sum(1 for _ in shard) for shard in self.iter_shards())

    def as_partitions(self) -> list[Partition]:
        """Materialize the shards as runtime input partitions.

        Shards are loaded one at a time; shard ``i`` becomes the
        partition with index ``i``, exactly as
        :func:`~repro.mapreduce.types.make_partitions` would split the
        concatenated records.
        """
        return [
            Partition.from_values(list(shard), index=index)
            for index, shard in enumerate(self.iter_shards())
        ]

    def block_statistics(self, blocking: BlockingFunction) -> ShardBlockStats:
        """Per-shard block counts from one streaming pass.

        This is the source-side equivalent of the paper's Job 1: it
        yields the ``(block key, shard)`` counts the BDM is built from
        — see :meth:`ShardBlockStats.to_bdm` — while holding no records.
        """
        counts: dict[tuple[object, int], int] = {}
        shard_records: list[int] = []
        missing = 0
        for index, shard in enumerate(self.iter_shards()):
            seen = 0
            for entity in shard:
                seen += 1
                key = blocking.key_for(entity)
                if key is None:
                    missing += 1
                    continue
                counts[(key, index)] = counts.get((key, index), 0) + 1
            shard_records.append(seen)
        return ShardBlockStats(
            block_counts=counts,
            shard_records=tuple(shard_records),
            missing_key_records=missing,
        )

    def _check_shard_index(self, index: int) -> None:
        if not 0 <= index < self.num_shards:
            raise IndexError(
                f"shard index {index} outside [0, {self.num_shards})"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(shards={self.num_shards})"


class InMemorySource(RecordSource):
    """A list of entities split into contiguous near-equal shards.

    ``InMemorySource(entities, num_shards=m)`` partitions exactly like
    ``make_partitions(entities, m)``, so a pipeline run over this source
    is byte-identical to ``pipeline.run(entities)``.
    """

    def __init__(self, entities: Sequence[Entity], num_shards: int = 1):
        self._entities = tuple(entities)
        self._bounds = shard_bounds(len(self._entities), num_shards)

    @property
    def num_shards(self) -> int:
        return len(self._bounds)

    def iter_shard(self, index: int) -> Iterator[Entity]:
        self._check_shard_index(index)
        start, stop = self._bounds[index]
        return iter(self._entities[start:stop])

    def shard_sizes(self) -> tuple[int, ...]:
        return tuple(stop - start for start, stop in self._bounds)


class CsvShardSource(RecordSource):
    """CSV-backed shards, streamed row by row.

    Two layouts are supported:

    * ``CsvShardSource(path, num_shards=m)`` — a single CSV split into
      ``m`` contiguous row ranges.  The row count is established by one
      counting pass on first use and cached; a full sweep over all
      shards (``iter_shards`` and everything built on it) parses the
      file exactly once, serving consecutive shards from one stream.
    * ``CsvShardSource([p0, p1, ...])`` — pre-sharded input, one file
      per shard in list order (the layout a distributed export
      produces).

    ``source`` overrides every entity's source tag, as in
    :func:`~repro.datasets.loaders.load_entities_csv`.
    """

    def __init__(
        self,
        path: str | Path | Sequence[str | Path],
        num_shards: int | None = None,
        *,
        source: str | None = None,
    ):
        self._source_tag = source
        if isinstance(path, (str, Path)):
            self._paths: list[Path] | None = None
            self._path = Path(path)
            self._num_shards = num_shards if num_shards is not None else 1
            if self._num_shards <= 0:
                raise ValueError(
                    f"num_shards must be positive, got {self._num_shards}"
                )
            self._bounds: list[tuple[int, int]] | None = None
        else:
            paths = [Path(p) for p in path]
            if not paths:
                raise ValueError("at least one shard file is required")
            if num_shards is not None and num_shards != len(paths):
                raise ValueError(
                    f"num_shards={num_shards} contradicts the "
                    f"{len(paths)} shard files given"
                )
            self._paths = paths
            self._path = None  # type: ignore[assignment]
            self._num_shards = len(paths)
            self._bounds = None

    @property
    def num_shards(self) -> int:
        return self._num_shards

    def iter_shard(self, index: int) -> Iterator[Entity]:
        """Stream one shard in isolation.

        For the single-file layout this skips to the shard's row range
        (O(start) parses); prefer :meth:`iter_shards` for full sweeps,
        which parses the file once for all shards.
        """
        self._check_shard_index(index)
        if self._paths is not None:
            return iter_entities_csv(self._paths[index], source=self._source_tag)
        start, stop = self._shard_bounds()[index]
        return islice(
            iter_entities_csv(self._path, source=self._source_tag), start, stop
        )

    def iter_shards(self) -> Iterator[Iterator[Entity]]:
        if self._paths is not None:
            yield from super().iter_shards()
            return
        # Single-file layout: one parse serves every shard — consecutive
        # islice views over a shared stream (consumers exhaust each
        # shard before the next, per the base-class contract).
        stream = iter_entities_csv(self._path, source=self._source_tag)
        for start, stop in self._shard_bounds():
            yield islice(stream, stop - start)

    def shard_sizes(self) -> tuple[int, ...]:
        if self._paths is not None:
            return super().shard_sizes()
        return tuple(stop - start for start, stop in self._shard_bounds())

    def _shard_bounds(self) -> list[tuple[int, int]]:
        """Row-range boundaries for the single-file layout (cached)."""
        if self._bounds is None:
            count = sum(
                1 for _ in iter_entities_csv(self._path, source=self._source_tag)
            )
            self._bounds = shard_bounds(count, self._num_shards)
        return self._bounds

    def __repr__(self) -> str:
        if self._paths is not None:
            return f"CsvShardSource(files={len(self._paths)})"
        return f"CsvShardSource({str(self._path)!r}, shards={self._num_shards})"


class GeneratorSource(RecordSource):
    """One generator factory per shard.

    Each factory is a zero-argument callable returning a *fresh*
    iterable of entities; the source calls it anew for every pass, so
    factories must be re-invocable and deterministic (the workflow reads
    each shard more than once).
    """

    def __init__(self, shard_factories: Sequence[Callable[[], Iterable[Entity]]]):
        if not shard_factories:
            raise ValueError("at least one shard factory is required")
        self._factories = list(shard_factories)

    @property
    def num_shards(self) -> int:
        return len(self._factories)

    def iter_shard(self, index: int) -> Iterator[Entity]:
        self._check_shard_index(index)
        return iter(self._factories[index]())
