"""The execution event channel: task lifecycle + cooperative cancellation.

The runtime is observable: while a job runs, :class:`LocalRuntime` (and
the runtimes built on it) emits :class:`ExecutionEvent`\\ s into an
:class:`EventChannel` — job/phase/task lifecycle, per-task statistics,
and, for reduce tasks, the task's output records.  The engine's
:class:`~repro.engine.execution.PipelineExecution` handle is built
entirely on this channel: streamed matches, progress snapshots and
cancellation are all derived from the same event stream, so serial,
parallel and async execution share one observability surface.

Events are emitted from the *driver* thread (the thread that called
``run()``), in deterministic order: task-started events fire in
submission order, task-finished events in task-index order — the same
order results are merged in, whatever the backend.  Listener exceptions
propagate to the driver; listeners should be cheap and non-throwing.

Cancellation is cooperative: :meth:`EventChannel.cancel` sets a flag the
runtime checks between task units (and between jobs/phases).  Task
units already running complete normally; nothing later starts, and the
driver raises :class:`PipelineCancelled`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable


class PipelineCancelled(Exception):
    """Raised by the driver when a cancelled execution reaches a
    cancellation point (between task units, phases, or jobs)."""


class EventKind:
    """Well-known :attr:`ExecutionEvent.kind` values."""

    JOB_STARTED = "job-started"
    JOB_FINISHED = "job-finished"
    PHASE_STARTED = "phase-started"
    PHASE_FINISHED = "phase-finished"
    TASK_STARTED = "task-started"
    TASK_FINISHED = "task-finished"


@dataclass(frozen=True, slots=True)
class ExecutionEvent:
    """One observation of a running job.

    ``stage`` is the workflow-level label the execution engine assigns
    (``"bdm"`` for Job 1, ``"matching"`` for Job 2; ``""`` when a job
    runs outside the pipeline).  ``job`` is the
    :attr:`~repro.mapreduce.job.MapReduceJob.name`.  ``phase`` is
    ``"map"``, ``"shuffle"`` or ``"reduce"`` for phase/task events and
    ``None`` for job-level events.  ``data`` carries kind-specific
    payload:

    =====================  ==============================================
    kind                   data keys
    =====================  ==============================================
    ``job-started``        ``num_map_tasks``, ``num_reduce_tasks``
    ``task-finished`` map  ``input_records``, ``output_records``
    ``task-finished`` red  ``input_records``, ``input_groups``,
                           ``output_records``, ``comparisons``,
                           ``matches``, ``output`` (the task's output
                           records, in emission order)
    ``job-finished``       ``counters`` (merged job counters, a dict)
    =====================  ==============================================
    """

    kind: str
    stage: str
    job: str
    phase: str | None = None
    task_index: int | None = None
    data: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        where = f", phase={self.phase!r}" if self.phase else ""
        task = f", task={self.task_index}" if self.task_index is not None else ""
        return (
            f"ExecutionEvent({self.kind!r}, stage={self.stage!r}, "
            f"job={self.job!r}{where}{task})"
        )


#: An event listener: called synchronously from the driver thread.
EventListener = Callable[[ExecutionEvent], None]


class EventChannel:
    """Carries events from a running execution to its observers.

    The channel is also the cancellation token: the runtime calls
    :meth:`raise_if_cancelled` at every scheduling decision, so a
    :meth:`cancel` from any thread stops the execution at the next
    task-unit boundary.

    ``stage`` is mutable context the execution engine sets before each
    job of the workflow; every event emitted afterwards carries it.
    """

    def __init__(self, listeners: Iterable[EventListener] = ()):
        self._listeners: list[EventListener] = list(listeners)
        self._cancelled = threading.Event()
        #: Workflow-stage label stamped onto emitted events.
        self.stage: str = ""

    # -- observation --------------------------------------------------------

    def subscribe(self, listener: EventListener) -> None:
        """Add a listener; events are delivered in subscription order."""
        self._listeners.append(listener)

    def emit(
        self,
        kind: str,
        job: str,
        *,
        phase: str | None = None,
        task_index: int | None = None,
        **data: Any,
    ) -> ExecutionEvent:
        """Build an event stamped with the current stage and deliver it."""
        event = ExecutionEvent(
            kind=kind,
            stage=self.stage,
            job=job,
            phase=phase,
            task_index=task_index,
            data=data,
        )
        for listener in self._listeners:
            listener(event)
        return event

    # -- cancellation --------------------------------------------------------

    def cancel(self) -> None:
        """Request cooperative cancellation (idempotent, thread-safe)."""
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    def raise_if_cancelled(self) -> None:
        """Raise :class:`PipelineCancelled` if cancellation was requested."""
        if self._cancelled.is_set():
            raise PipelineCancelled("execution cancelled")

    def __repr__(self) -> str:
        return (
            f"EventChannel(listeners={len(self._listeners)}, "
            f"cancelled={self.cancelled})"
        )
