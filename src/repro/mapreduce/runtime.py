"""The local MapReduce runtime.

Executes a :class:`~repro.mapreduce.job.MapReduceJob` over a list of
input partitions exactly as a (deterministic) Hadoop would: one map
task per input partition, a full partition/sort/group shuffle, then one
reduce task per configured reduce index.  The runtime records rich
per-task statistics which the cluster simulator turns into
execution-time estimates.

Task execution is factored into self-contained, schedulable units —
:func:`execute_map_task` and :func:`execute_reduce_task` — that take
only picklable arguments and return their results (including side
outputs) instead of mutating shared state.  :class:`LocalRuntime` runs
them in task-index order in-process; the engine package's parallel
runtime ships the same units to worker pools.  Either way the merged
:class:`JobResult` is byte-for-byte identical because results are
always combined in task-index order.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Sequence

from .counters import Counters, StandardCounter
from .dfs import DistributedFileSystem
from .external_shuffle import ExternalShuffle
from .job import JobConfig, MapReduceJob, TaskContext
from .shuffle import (
    group_presorted_bucket,
    partition_map_output,
    shuffle_bucket,
    sort_bucket,
)
from .types import KeyValue, Partition


@dataclass(frozen=True, slots=True)
class SideRecord:
    """One side-output record a map task produced.

    Side outputs are collected inside the task unit and applied to the
    DFS by whoever scheduled the task — this is what lets map tasks run
    in worker processes that do not share the driver's file system.
    """

    directory: str
    key: Any
    value: Any


@dataclass(frozen=True, slots=True)
class MapTaskResult:
    """Statistics and output of one map task."""

    partition_index: int
    input_records: int
    output_records: int
    counters: Counters
    output: tuple[KeyValue, ...]
    side_records: tuple[SideRecord, ...] = ()


@dataclass(frozen=True, slots=True)
class ReduceTaskResult:
    """Statistics and output of one reduce task."""

    reduce_index: int
    input_records: int
    input_groups: int
    output_records: int
    counters: Counters
    output: tuple[KeyValue, ...]


@dataclass(frozen=True, slots=True)
class JobResult:
    """Everything a finished job produced.

    ``output`` concatenates reduce outputs in reduce-task order.
    ``counters`` aggregates the runtime's standard counters and any
    user counters across all tasks.
    """

    job_name: str
    config: JobConfig
    map_tasks: tuple[MapTaskResult, ...]
    reduce_tasks: tuple[ReduceTaskResult, ...]
    counters: Counters

    @property
    def output(self) -> list[KeyValue]:
        records: list[KeyValue] = []
        for task in self.reduce_tasks:
            records.extend(task.output)
        return records

    def output_values(self) -> list[Any]:
        return [record.value for record in self.output]

    def reduce_input_records(self) -> list[int]:
        return [task.input_records for task in self.reduce_tasks]

    def reduce_counter(self, name: str) -> list[int]:
        """Per-reduce-task values of a counter (e.g. pair comparisons)."""
        return [task.counters.get(name) for task in self.reduce_tasks]

    def map_output_records(self) -> int:
        return self.counters.get(StandardCounter.MAP_OUTPUT_RECORDS)


# ---------------------------------------------------------------------------
# Schedulable task units
# ---------------------------------------------------------------------------


def execute_map_task(
    job: MapReduceJob, config: JobConfig, partition: Partition
) -> MapTaskResult:
    """Run one map task and return its output, counters and side records.

    Pure with respect to the caller: no shared file system or counters
    are touched, so the unit can execute in any process.
    """
    side_records: list[SideRecord] = []

    def side_writer(directory: str, key: Any, value: Any) -> None:
        side_records.append(SideRecord(directory, key, value))
        context.counters.increment(StandardCounter.SIDE_OUTPUT_RECORDS)

    context = TaskContext(
        config, partition_index=partition.index, side_writer=side_writer
    )
    output: list[KeyValue] = []

    def emit(key: Any, value: Any) -> None:
        output.append(KeyValue(key, value))

    job.configure_map(context)
    for record in partition:
        job.map(record.key, record.value, emit, context)
        context.counters.increment(StandardCounter.MAP_INPUT_RECORDS)

    output = _run_combiner(job, context, output)
    context.counters.increment(StandardCounter.MAP_OUTPUT_RECORDS, len(output))
    return MapTaskResult(
        partition_index=partition.index,
        input_records=len(partition),
        output_records=len(output),
        counters=context.counters,
        output=tuple(output),
        side_records=tuple(side_records),
    )


def _run_combiner(
    job: MapReduceJob, context: TaskContext, output: list[KeyValue]
) -> list[KeyValue]:
    """Apply the job's combiner to one map task's output, if defined.

    Groups by the full key (sorted by the sort projection first) and
    replaces each group by whatever the combiner returns.  Jobs
    without a combiner pass through untouched.
    """
    if type(job).combine is MapReduceJob.combine:
        return output

    sorted_output = sort_bucket(job, output)
    combined: list[KeyValue] = []
    i = 0
    n = len(sorted_output)
    while i < n:
        j = i
        key = sorted_output[i].key
        values: list[Any] = []
        while j < n and sorted_output[j].key == key:
            values.append(sorted_output[j].value)
            j += 1
        context.counters.increment(StandardCounter.COMBINE_INPUT_RECORDS, j - i)
        replacement = job.combine(key, values)
        if replacement is None:
            combined.extend(sorted_output[i:j])
            context.counters.increment(StandardCounter.COMBINE_OUTPUT_RECORDS, j - i)
        else:
            for out_key, out_value in replacement:
                combined.append(KeyValue(out_key, out_value))
                context.counters.increment(StandardCounter.COMBINE_OUTPUT_RECORDS)
        i = j
    return combined


def execute_reduce_task(
    job: MapReduceJob,
    config: JobConfig,
    reduce_index: int,
    bucket: list[KeyValue],
    presorted: bool = False,
) -> ReduceTaskResult:
    """Run one reduce task over its shuffled bucket.

    ``presorted`` marks buckets that already arrive in the job's sort
    order (the external shuffle's merged run files) — grouping then
    skips the redundant re-encode + re-sort.
    """
    context = TaskContext(config, reduce_index=reduce_index)
    output: list[KeyValue] = []

    def emit(key: Any, value: Any) -> None:
        output.append(KeyValue(key, value))

    job.configure_reduce(context)
    groups = (
        group_presorted_bucket(job, bucket)
        if presorted
        else shuffle_bucket(job, bucket)
    )
    for group in groups:
        job.reduce(group.key, group.values, emit, context)
        context.counters.increment(StandardCounter.REDUCE_INPUT_GROUPS)
        context.counters.increment(StandardCounter.REDUCE_INPUT_RECORDS, len(group))
    context.counters.increment(StandardCounter.REDUCE_OUTPUT_RECORDS, len(output))
    return ReduceTaskResult(
        reduce_index=reduce_index,
        input_records=len(bucket),
        input_groups=len(groups),
        output_records=len(output),
        counters=context.counters,
        output=tuple(output),
    )


class LocalRuntime:
    """Deterministic in-process job executor.

    Parameters
    ----------
    dfs:
        Optional shared file system for side outputs / job chaining.
        A fresh one is created when omitted.
    """

    def __init__(self, dfs: DistributedFileSystem | None = None):
        self.dfs = dfs if dfs is not None else DistributedFileSystem()

    def close(self) -> None:
        """Release scheduling resources (no-op for in-process execution)."""

    # -- public API --------------------------------------------------------

    def run(
        self,
        job: MapReduceJob,
        partitions: Sequence[Partition],
        num_reduce_tasks: int,
        *,
        properties: dict[str, Any] | None = None,
        memory_budget: int | None = None,
    ) -> JobResult:
        """Run ``job`` over ``partitions`` with ``num_reduce_tasks`` reducers.

        The number of map tasks is the number of input partitions, as in
        the paper (one map task per input split; splitting disabled).

        ``memory_budget`` caps the number of map output records the
        shuffle holds in memory; the rest streams through sorted run
        files on disk (:class:`~repro.mapreduce.ExternalShuffle`).
        Matches, reduce outputs and counters are byte-identical to the
        in-memory path, but per-map-task raw ``output`` tuples are not
        retained on the returned :class:`MapTaskResult`\\ s (their
        statistics are).
        """
        if not partitions:
            raise ValueError("at least one input partition is required")
        indices = [p.index for p in partitions]
        if indices != list(range(len(partitions))):
            raise ValueError(
                f"partitions must have contiguous indices 0..m-1, got {indices}"
            )
        config = JobConfig(
            num_map_tasks=len(partitions),
            num_reduce_tasks=num_reduce_tasks,
            properties=dict(properties or {}),
        )

        if memory_budget is not None:
            with ExternalShuffle(job, num_reduce_tasks, memory_budget) as spill:
                # Each map task's output is routed into the shuffle (and
                # dropped from the result) as soon as the task completes,
                # so peak memory is one task's output + the spill buffer
                # — never the whole map stage.
                def drain(result: MapTaskResult) -> MapTaskResult:
                    spill.add_records(result.output)
                    return replace(result, output=())

                map_results = self._execute_map_tasks(
                    job, config, partitions, sink=drain
                )
                self._apply_side_records(map_results)
                # Spill buckets come back merged in sort order already.
                reduce_results = self._execute_reduce_tasks(
                    job, config, spill.buckets(), presorted=True
                )
        else:
            map_results = self._execute_map_tasks(job, config, partitions)
            self._apply_side_records(map_results)
            map_outputs = [result.output for result in map_results]
            buckets = partition_map_output(job, map_outputs, num_reduce_tasks)
            reduce_results = self._execute_reduce_tasks(job, config, buckets)

        counters = Counters.merged(
            [r.counters for r in map_results] + [r.counters for r in reduce_results]
        )
        return JobResult(
            job_name=job.name,
            config=config,
            map_tasks=tuple(map_results),
            reduce_tasks=tuple(reduce_results),
            counters=counters,
        )

    # -- scheduling (overridden by parallel runtimes) ----------------------

    def _execute_map_tasks(
        self,
        job: MapReduceJob,
        config: JobConfig,
        partitions: Sequence[Partition],
        sink: "Callable[[MapTaskResult], MapTaskResult] | None" = None,
    ) -> list[MapTaskResult]:
        """Run the map tasks in task-index order.

        ``sink`` (when given) is applied to each result as soon as it is
        available, in task-index order — the external shuffle uses it to
        consume outputs incrementally instead of holding the whole map
        stage in memory.
        """
        results: list[MapTaskResult] = []
        for part in partitions:
            result = execute_map_task(job, config, part)
            results.append(sink(result) if sink is not None else result)
        return results

    def _execute_reduce_tasks(
        self,
        job: MapReduceJob,
        config: JobConfig,
        buckets: Sequence[list[KeyValue]],
        presorted: bool = False,
    ) -> list[ReduceTaskResult]:
        return [
            execute_reduce_task(job, config, reduce_index, bucket, presorted)
            for reduce_index, bucket in enumerate(buckets)
        ]

    # -- side outputs -------------------------------------------------------

    def _apply_side_records(self, map_results: Sequence[MapTaskResult]) -> None:
        """Materialise side outputs in the driver's DFS, in task order."""
        for result in map_results:
            paths: dict[str, str] = {}
            for record in result.side_records:
                path = paths.get(record.directory)
                if path is None:
                    path = DistributedFileSystem.task_path(
                        record.directory, result.partition_index
                    )
                    self.dfs.create(path)
                    paths[record.directory] = path
                self.dfs.append(path, record.key, record.value)
