"""The local MapReduce runtime.

Executes a :class:`~repro.mapreduce.job.MapReduceJob` over a list of
input partitions exactly as a (deterministic) Hadoop would: one map
task per input partition, a full partition/sort/group shuffle, then one
reduce task per configured reduce index.  The runtime records rich
per-task statistics which the cluster simulator turns into
execution-time estimates.

Task execution is factored into self-contained, schedulable units —
:func:`execute_map_task` and :func:`execute_reduce_task` — that take
only picklable arguments and return their results (including side
outputs) instead of mutating shared state.  :class:`LocalRuntime` runs
them in task-index order in-process; the engine package's parallel and
async runtimes ship the same units to worker pools / an asyncio loop.
Either way the merged :class:`JobResult` is byte-for-byte identical
because results are always combined in task-index order.

Runtimes are also *observable*: attach an
:class:`~repro.mapreduce.events.EventChannel` to :attr:`LocalRuntime.
events` and ``run()`` emits job/phase/task lifecycle events (with
per-task statistics and reduce outputs) in deterministic order, and
honours cooperative cancellation at every task-unit boundary.  The
engine's execution handles (streamed matches, progress, ``cancel()``)
are built entirely on this channel.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable, Iterator, Sequence

from .counters import Counters, StandardCounter
from .dfs import DistributedFileSystem
from .events import EventChannel, EventKind
from .external_shuffle import ExternalShuffle
from .job import JobConfig, MapReduceJob, TaskContext
from .shuffle import (
    group_presorted_entries,
    partition_map_output,
    shuffle_bucket,
    sort_bucket,
)
from .types import KeyValue, Partition

#: One schedulable call: (task unit function, argument tuple).
TaskCall = tuple[Callable[..., Any], tuple[Any, ...]]


@dataclass(frozen=True, slots=True)
class SideRecord:
    """One side-output record a map task produced.

    Side outputs are collected inside the task unit and applied to the
    DFS by whoever scheduled the task — this is what lets map tasks run
    in worker processes that do not share the driver's file system.
    """

    directory: str
    key: Any
    value: Any


@dataclass(frozen=True, slots=True)
class MapTaskResult:
    """Statistics and output of one map task."""

    partition_index: int
    input_records: int
    output_records: int
    counters: Counters
    output: tuple[KeyValue, ...]
    side_records: tuple[SideRecord, ...] = ()


@dataclass(frozen=True, slots=True)
class ReduceTaskResult:
    """Statistics and output of one reduce task."""

    reduce_index: int
    input_records: int
    input_groups: int
    output_records: int
    counters: Counters
    output: tuple[KeyValue, ...]


@dataclass(frozen=True, slots=True)
class JobResult:
    """Everything a finished job produced.

    ``output`` concatenates reduce outputs in reduce-task order.
    ``counters`` aggregates the runtime's standard counters and any
    user counters across all tasks.
    """

    job_name: str
    config: JobConfig
    map_tasks: tuple[MapTaskResult, ...]
    reduce_tasks: tuple[ReduceTaskResult, ...]
    counters: Counters

    @property
    def output(self) -> list[KeyValue]:
        records: list[KeyValue] = []
        for task in self.reduce_tasks:
            records.extend(task.output)
        return records

    def output_values(self) -> list[Any]:
        return [record.value for record in self.output]

    def reduce_input_records(self) -> list[int]:
        return [task.input_records for task in self.reduce_tasks]

    def reduce_counter(self, name: str) -> list[int]:
        """Per-reduce-task values of a counter (e.g. pair comparisons)."""
        return [task.counters.get(name) for task in self.reduce_tasks]

    def map_output_records(self) -> int:
        return self.counters.get(StandardCounter.MAP_OUTPUT_RECORDS)


# ---------------------------------------------------------------------------
# Schedulable task units
# ---------------------------------------------------------------------------


def execute_map_task(
    job: MapReduceJob, config: JobConfig, partition: Partition
) -> MapTaskResult:
    """Run one map task and return its output, counters and side records.

    Pure with respect to the caller: no shared file system or counters
    are touched, so the unit can execute in any process.
    """
    side_records: list[SideRecord] = []

    def side_writer(directory: str, key: Any, value: Any) -> None:
        side_records.append(SideRecord(directory, key, value))
        context.counters.increment(StandardCounter.SIDE_OUTPUT_RECORDS)

    context = TaskContext(
        config, partition_index=partition.index, side_writer=side_writer
    )
    output: list[KeyValue] = []

    def emit(key: Any, value: Any) -> None:
        output.append(KeyValue(key, value))

    job.configure_map(context)
    for record in partition:
        job.map(record.key, record.value, emit, context)
        context.counters.increment(StandardCounter.MAP_INPUT_RECORDS)

    output = _run_combiner(job, context, output)
    context.counters.increment(StandardCounter.MAP_OUTPUT_RECORDS, len(output))
    return MapTaskResult(
        partition_index=partition.index,
        input_records=len(partition),
        output_records=len(output),
        counters=context.counters,
        output=tuple(output),
        side_records=tuple(side_records),
    )


def _run_combiner(
    job: MapReduceJob, context: TaskContext, output: list[KeyValue]
) -> list[KeyValue]:
    """Apply the job's combiner to one map task's output, if defined.

    Groups by the full key (sorted by the sort projection first) and
    replaces each group by whatever the combiner returns.  Jobs
    without a combiner pass through untouched.
    """
    if type(job).combine is MapReduceJob.combine:
        return output

    sorted_output = sort_bucket(job, output)
    combined: list[KeyValue] = []
    i = 0
    n = len(sorted_output)
    while i < n:
        j = i
        key = sorted_output[i].key
        values: list[Any] = []
        while j < n and sorted_output[j].key == key:
            values.append(sorted_output[j].value)
            j += 1
        context.counters.increment(StandardCounter.COMBINE_INPUT_RECORDS, j - i)
        replacement = job.combine(key, values)
        if replacement is None:
            combined.extend(sorted_output[i:j])
            context.counters.increment(StandardCounter.COMBINE_OUTPUT_RECORDS, j - i)
        else:
            for out_key, out_value in replacement:
                combined.append(KeyValue(out_key, out_value))
                context.counters.increment(StandardCounter.COMBINE_OUTPUT_RECORDS)
        i = j
    return combined


def execute_reduce_task(
    job: MapReduceJob,
    config: JobConfig,
    reduce_index: int,
    bucket: "list[KeyValue] | list[tuple[Any, KeyValue]]",
    presorted: bool = False,
) -> ReduceTaskResult:
    """Run one reduce task over its shuffled bucket.

    ``presorted`` marks buckets that already arrive in the job's sort
    order (the external shuffle's merged run files).  Such a bucket is a
    list of ``(sort key, record)`` *entries* — the sort key the spill
    path computed once in :meth:`~repro.mapreduce.external_shuffle.
    ExternalShuffle.add` travels all the way here, so grouping reuses it
    (for packed jobs it *is* the packed int) instead of re-encoding
    every record.  Unsorted buckets are plain record lists.
    """
    context = TaskContext(config, reduce_index=reduce_index)
    output: list[KeyValue] = []

    def emit(key: Any, value: Any) -> None:
        output.append(KeyValue(key, value))

    job.configure_reduce(context)
    groups = (
        group_presorted_entries(job, bucket)
        if presorted
        else shuffle_bucket(job, bucket)
    )
    for group in groups:
        job.reduce(group.key, group.values, emit, context)
        context.counters.increment(StandardCounter.REDUCE_INPUT_GROUPS)
        context.counters.increment(StandardCounter.REDUCE_INPUT_RECORDS, len(group))
    context.counters.increment(StandardCounter.REDUCE_OUTPUT_RECORDS, len(output))
    return ReduceTaskResult(
        reduce_index=reduce_index,
        input_records=len(bucket),
        input_groups=len(groups),
        output_records=len(output),
        counters=context.counters,
        output=tuple(output),
    )


class LocalRuntime:
    """Deterministic in-process job executor.

    Parameters
    ----------
    dfs:
        Optional shared file system for side outputs / job chaining.
        A fresh one is created when omitted.
    events:
        Optional :class:`~repro.mapreduce.events.EventChannel` the
        runtime emits lifecycle events into (and checks for cooperative
        cancellation).  Also settable after construction via the
        :attr:`events` attribute — the execution backends attach the
        channel of the current :class:`~repro.engine.execution.
        PipelineExecution` that way.
    """

    def __init__(
        self,
        dfs: DistributedFileSystem | None = None,
        *,
        events: EventChannel | None = None,
    ):
        self.dfs = dfs if dfs is not None else DistributedFileSystem()
        #: Event channel lifecycle events are emitted into (may be None).
        self.events = events

    def close(self) -> None:
        """Release scheduling resources (no-op for in-process execution)."""

    # -- public API --------------------------------------------------------

    def run(
        self,
        job: MapReduceJob,
        partitions: Sequence[Partition],
        num_reduce_tasks: int,
        *,
        properties: dict[str, Any] | None = None,
        memory_budget: int | None = None,
    ) -> JobResult:
        """Run ``job`` over ``partitions`` with ``num_reduce_tasks`` reducers.

        The number of map tasks is the number of input partitions, as in
        the paper (one map task per input split; splitting disabled).

        ``memory_budget`` caps the number of map output records the
        shuffle holds in memory; the rest streams through sorted run
        files on disk (:class:`~repro.mapreduce.ExternalShuffle`).
        Matches, reduce outputs and counters are byte-identical to the
        in-memory path, but per-map-task raw ``output`` tuples are not
        retained on the returned :class:`MapTaskResult`\\ s (their
        statistics are).

        With an :attr:`events` channel attached, job / phase / task
        lifecycle events are emitted in deterministic order and
        cancellation is honoured between task units (raising
        :class:`~repro.mapreduce.events.PipelineCancelled`).
        """
        if not partitions:
            raise ValueError("at least one input partition is required")
        indices = [p.index for p in partitions]
        if indices != list(range(len(partitions))):
            raise ValueError(
                f"partitions must have contiguous indices 0..m-1, got {indices}"
            )
        config = JobConfig(
            num_map_tasks=len(partitions),
            num_reduce_tasks=num_reduce_tasks,
            properties=dict(properties or {}),
        )
        events = self.events
        if events is not None:
            events.raise_if_cancelled()
            events.emit(
                EventKind.JOB_STARTED,
                job.name,
                num_map_tasks=len(partitions),
                num_reduce_tasks=num_reduce_tasks,
            )
        map_sink = self._map_event_sink(job)
        reduce_sink = self._reduce_event_sink(job)

        if memory_budget is not None:
            with ExternalShuffle(job, num_reduce_tasks, memory_budget) as spill:
                # Each map task's output is routed into the shuffle (and
                # dropped from the result) as soon as the task completes,
                # so peak memory is one task's output + the spill buffer
                # — never the whole map stage.
                def drain(result: MapTaskResult) -> MapTaskResult:
                    if map_sink is not None:
                        map_sink(result)
                    spill.add_records(result.output)
                    return replace(result, output=())

                self._notify_phase(job, EventKind.PHASE_STARTED, "map")
                map_results = self._execute_map_tasks(
                    job, config, partitions, sink=drain
                )
                self._notify_phase(job, EventKind.PHASE_FINISHED, "map")
                self._apply_side_records(map_results)
                # Spill buckets come back merged in sort order already,
                # as (sort key, record) entries — the key encoded once
                # in ExternalShuffle.add is reused for grouping.
                self._notify_phase(job, EventKind.PHASE_STARTED, "shuffle")
                buckets = spill.buckets()
                self._notify_phase(job, EventKind.PHASE_FINISHED, "shuffle")
                self._notify_phase(job, EventKind.PHASE_STARTED, "reduce")
                reduce_results = self._execute_reduce_tasks(
                    job, config, buckets, presorted=True, sink=reduce_sink
                )
                self._notify_phase(job, EventKind.PHASE_FINISHED, "reduce")
        else:
            self._notify_phase(job, EventKind.PHASE_STARTED, "map")
            map_results = self._execute_map_tasks(
                job, config, partitions, sink=map_sink
            )
            self._notify_phase(job, EventKind.PHASE_FINISHED, "map")
            self._apply_side_records(map_results)
            self._notify_phase(job, EventKind.PHASE_STARTED, "shuffle")
            map_outputs = [result.output for result in map_results]
            buckets = partition_map_output(job, map_outputs, num_reduce_tasks)
            self._notify_phase(job, EventKind.PHASE_FINISHED, "shuffle")
            self._notify_phase(job, EventKind.PHASE_STARTED, "reduce")
            reduce_results = self._execute_reduce_tasks(
                job, config, buckets, sink=reduce_sink
            )
            self._notify_phase(job, EventKind.PHASE_FINISHED, "reduce")

        counters = Counters.merged(
            [r.counters for r in map_results] + [r.counters for r in reduce_results]
        )
        if events is not None:
            events.emit(
                EventKind.JOB_FINISHED, job.name, counters=counters.as_dict()
            )
        return JobResult(
            job_name=job.name,
            config=config,
            map_tasks=tuple(map_results),
            reduce_tasks=tuple(reduce_results),
            counters=counters,
        )

    # -- event emission ------------------------------------------------------

    def _notify_phase(self, job: MapReduceJob, kind: str, phase: str) -> None:
        """Phase boundary: a cancellation point + lifecycle event."""
        if self.events is not None:
            self.events.raise_if_cancelled()
            self.events.emit(kind, job.name, phase=phase)

    def _task_starting(self, job: MapReduceJob, phase: str, task_index: int) -> None:
        """Per-task-unit cancellation point + ``task-started`` event.

        Fires at *submission* time: just before in-process execution for
        the serial runtime, at pool submission for the parallel/async
        runtimes — either way in submission order, from the driver.
        """
        if self.events is not None:
            self.events.raise_if_cancelled()
            self.events.emit(
                EventKind.TASK_STARTED, job.name, phase=phase, task_index=task_index
            )

    def _map_event_sink(
        self, job: MapReduceJob
    ) -> "Callable[[MapTaskResult], MapTaskResult] | None":
        events = self.events
        if events is None:
            return None

        def sink(result: MapTaskResult) -> MapTaskResult:
            events.emit(
                EventKind.TASK_FINISHED,
                job.name,
                phase="map",
                task_index=result.partition_index,
                input_records=result.input_records,
                output_records=result.output_records,
            )
            return result

        return sink

    def _reduce_event_sink(
        self, job: MapReduceJob
    ) -> "Callable[[ReduceTaskResult], ReduceTaskResult] | None":
        events = self.events
        if events is None:
            return None

        def sink(task: ReduceTaskResult) -> ReduceTaskResult:
            # The task's output rides on the event: for the matching job
            # these records *are* the matches, which is what lets the
            # execution handle stream them out task by task.
            events.emit(
                EventKind.TASK_FINISHED,
                job.name,
                phase="reduce",
                task_index=task.reduce_index,
                input_records=task.input_records,
                input_groups=task.input_groups,
                output_records=task.output_records,
                comparisons=task.counters.get(StandardCounter.PAIR_COMPARISONS),
                matches=task.counters.get(StandardCounter.PAIRS_MATCHED),
                output=task.output,
            )
            return task

        return sink

    # -- scheduling (overridden by the parallel/async runtimes) -------------

    def _map_calls(
        self,
        job: MapReduceJob,
        config: JobConfig,
        partitions: Sequence[Partition],
    ) -> Iterator[TaskCall]:
        """The map task units, as lazily-built schedulable calls.

        Pulling the next call is the submission point: it emits the
        ``task-started`` event and checks cancellation, so every runtime
        that consumes this iterator — in-process, pooled, or async —
        shares the same lifecycle semantics for free.
        """
        for part in partitions:
            self._task_starting(job, "map", part.index)
            yield execute_map_task, (job, config, part)

    def _reduce_calls(
        self,
        job: MapReduceJob,
        config: JobConfig,
        buckets: Sequence[list],
        presorted: bool,
    ) -> Iterator[TaskCall]:
        """The reduce task units; buckets are fetched one per pull
        (under a memory budget they are lazily-drained spill views)."""
        for index in range(len(buckets)):
            self._task_starting(job, "reduce", index)
            yield execute_reduce_task, (job, config, index, buckets[index], presorted)

    def _execute_map_tasks(
        self,
        job: MapReduceJob,
        config: JobConfig,
        partitions: Sequence[Partition],
        sink: "Callable[[MapTaskResult], MapTaskResult] | None" = None,
    ) -> list[MapTaskResult]:
        """Run the map tasks in task-index order.

        ``sink`` (when given) is applied to each result as soon as it is
        available, in task-index order — the external shuffle uses it to
        consume outputs incrementally instead of holding the whole map
        stage in memory, and the event channel to emit task-finished
        events.
        """
        return self._run_calls(self._map_calls(job, config, partitions), sink)

    def _execute_reduce_tasks(
        self,
        job: MapReduceJob,
        config: JobConfig,
        buckets: Sequence[list],
        presorted: bool = False,
        sink: "Callable[[ReduceTaskResult], ReduceTaskResult] | None" = None,
    ) -> list[ReduceTaskResult]:
        return self._run_calls(
            self._reduce_calls(job, config, buckets, presorted), sink
        )

    def _run_calls(
        self, calls: Iterable[TaskCall], sink: "Callable | None"
    ) -> list:
        results: list = []
        for fn, args in calls:
            result = fn(*args)
            results.append(sink(result) if sink is not None else result)
        return results

    # -- side outputs -------------------------------------------------------

    def _apply_side_records(self, map_results: Sequence[MapTaskResult]) -> None:
        """Materialise side outputs in the driver's DFS, in task order."""
        for result in map_results:
            paths: dict[str, str] = {}
            for record in result.side_records:
                path = paths.get(record.directory)
                if path is None:
                    path = DistributedFileSystem.task_path(
                        record.directory, result.partition_index
                    )
                    self.dfs.create(path)
                    paths[record.directory] = path
                self.dfs.append(path, record.key, record.value)
