"""Spill-to-disk shuffle: sorted run files for over-budget map output.

The in-memory shuffle (:mod:`repro.mapreduce.shuffle`) holds every map
output record until all reduce buckets are built — fine for the paper's
experiments, a wall for anything larger.  :class:`ExternalShuffle`
bounds that working set: records are routed to their reduce bucket as
they arrive, and whenever more than ``memory_budget`` records are
buffered, each bucket's buffer is sorted by the job's sort projection
and spilled to a run file on disk.  Draining a bucket merges its run
files with the in-memory tail.

The result is **byte-identical** to the in-memory path.  Every record
carries a global arrival sequence number, runs are sorted by
``(sort key, sequence)``, and the k-way merge compares the same pair —
so a drained bucket is exactly the stable sort (by the job's sort
projection) of that bucket's arrival order, which is what
:func:`~repro.mapreduce.shuffle.sort_bucket` produces.  The reduce
task's own stable sort then leaves the order untouched, and grouping,
matching, and counters come out the same.
"""

from __future__ import annotations

import heapq
import pickle
import shutil
import tempfile
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from .job import MapReduceJob
from .types import KeyValue

#: One buffered/spilled record: (sort key, arrival sequence, record).
_Entry = tuple[Any, int, KeyValue]


class ExternalShuffle:
    """Partition/sort/spill map output under a record memory budget.

    Parameters
    ----------
    job:
        Supplies ``partition`` and ``sort_key`` — the same routing
        functions the in-memory shuffle uses.
    num_reduce_tasks:
        Number of reduce buckets.
    memory_budget:
        Maximum records buffered (across all buckets) before a spill.
    spill_dir:
        Directory for run files; a private temporary directory (removed
        on :meth:`close`) is created when omitted.
    """

    def __init__(
        self,
        job: MapReduceJob,
        num_reduce_tasks: int,
        memory_budget: int,
        *,
        spill_dir: str | Path | None = None,
    ):
        if num_reduce_tasks <= 0:
            raise ValueError(
                f"num_reduce_tasks must be positive, got {num_reduce_tasks}"
            )
        if memory_budget <= 0:
            raise ValueError(
                f"memory_budget must be positive, got {memory_budget}"
            )
        self.job = job
        self.num_reduce_tasks = num_reduce_tasks
        self.memory_budget = memory_budget
        # Packed jobs hand us their codec directly — one call per record
        # instead of the sort_key method wrapper.
        projection = job.packed_projection
        self._sort_key = (
            projection.codec.encode if projection is not None else job.sort_key
        )
        if spill_dir is None:
            self._dir = Path(tempfile.mkdtemp(prefix="repro-shuffle-"))
            self._owns_dir = True
        else:
            self._dir = Path(spill_dir)
            self._dir.mkdir(parents=True, exist_ok=True)
            self._owns_dir = False
        self._buffers: list[list[_Entry]] = [[] for _ in range(num_reduce_tasks)]
        self._runs: list[list[Path]] = [[] for _ in range(num_reduce_tasks)]
        self._buffered = 0
        self._next_sequence = 0
        self._spill_count = 0
        self._spilled_records = 0
        self._closed = False

    # -- feeding ------------------------------------------------------------

    def add(self, record: KeyValue) -> None:
        """Route one map output record; spill when the budget fills up.

        The sort projection is computed once here and travels with the
        record through buffers, run files and the merge — for the
        strategy jobs that projection is a packed int
        (:class:`~repro.mapreduce.types.KeyCodec`), which both compares
        and pickles far cheaper than a composite-key tuple.
        """
        if self._closed:
            raise RuntimeError("cannot add records to a closed shuffle")
        job = self.job
        index = job.validate_partition(record.key, self.num_reduce_tasks)
        entry = (self._sort_key(record.key), self._next_sequence, record)
        self._next_sequence += 1
        self._buffers[index].append(entry)
        self._buffered += 1
        if self._buffered >= self.memory_budget:
            self.spill()

    def add_records(self, records: Iterable[KeyValue]) -> None:
        add = self.add
        for record in records:
            add(record)

    def spill(self) -> None:
        """Flush every non-empty buffer to a sorted run file."""
        if self._buffered == 0:
            return
        for index, buffer in enumerate(self._buffers):
            if not buffer:
                continue
            buffer.sort(key=_entry_order)
            path = (
                self._dir
                / f"spill-{self._spill_count:05d}-bucket-{index:05d}.run"
            )
            with path.open("wb") as handle:
                for entry in buffer:
                    pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
            self._runs[index].append(path)
            self._spilled_records += len(buffer)
            self._buffers[index] = []
        self._spill_count += 1
        self._buffered = 0

    # -- introspection ------------------------------------------------------

    @property
    def spill_count(self) -> int:
        """Number of spill rounds performed so far."""
        return self._spill_count

    @property
    def spilled_records(self) -> int:
        """Total records written to run files so far."""
        return self._spilled_records

    @property
    def buffered_records(self) -> int:
        """Records currently held in memory."""
        return self._buffered

    # -- draining -----------------------------------------------------------

    def bucket_entries(self, index: int) -> list[tuple[Any, KeyValue]]:
        """One reduce task's ``(sort key, record)`` entries, merged from
        run files + buffer.

        The returned list is sorted by ``(sort key, arrival sequence)``
        — i.e. the stable sort of the bucket's arrival order, identical
        to what the in-memory shuffle feeds the same reduce task.  The
        sort key computed once in :meth:`add` rides along so the reduce
        task's group walk (:func:`~repro.mapreduce.shuffle.
        group_presorted_entries`) never re-encodes a record.
        """
        if self._closed:
            raise RuntimeError("cannot drain a closed shuffle")
        if not 0 <= index < self.num_reduce_tasks:
            raise IndexError(
                f"bucket index {index} outside [0, {self.num_reduce_tasks})"
            )
        tail = sorted(self._buffers[index], key=_entry_order)
        streams: list[Iterator[_Entry] | list[_Entry]] = [
            _iter_run(path) for path in self._runs[index]
        ]
        streams.append(tail)
        merged = heapq.merge(*streams, key=_entry_order)
        return [(key, record) for key, _seq, record in merged]

    def bucket_records(self, index: int) -> list[KeyValue]:
        """One reduce task's records (sort keys stripped), merged like
        :meth:`bucket_entries`."""
        return [record for _key, record in self.bucket_entries(index)]

    def buckets(self) -> Sequence[list[tuple[Any, KeyValue]]]:
        """A lazy sequence of all reduce buckets, as entry lists.

        ``buckets()[i]`` drains bucket ``i`` (via :meth:`bucket_entries`)
        on access and retains nothing, so a serial reducer pass holds
        one bucket at a time.
        """
        return _LazyBuckets(self)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Drop buffers and delete owned spill files."""
        if self._closed:
            return
        self._closed = True
        self._buffers = [[] for _ in range(self.num_reduce_tasks)]
        if self._owns_dir:
            shutil.rmtree(self._dir, ignore_errors=True)

    def __enter__(self) -> "ExternalShuffle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ExternalShuffle(r={self.num_reduce_tasks}, "
            f"budget={self.memory_budget}, spills={self._spill_count})"
        )


def _entry_order(entry: _Entry) -> tuple[Any, int]:
    """Sort/merge order: sort projection first, arrival sequence second.

    The sequence is globally unique, so records themselves are never
    compared (they need not be orderable).
    """
    return (entry[0], entry[1])


def _iter_run(path: Path) -> Iterator[_Entry]:
    """Stream one run file, record at a time."""
    with path.open("rb") as handle:
        while True:
            try:
                yield pickle.load(handle)
            except EOFError:
                return


class _LazyBuckets(Sequence[list]):
    """Sequence view that drains one bucket per access."""

    def __init__(self, shuffle: ExternalShuffle):
        self._shuffle = shuffle

    def __len__(self) -> int:
        return self._shuffle.num_reduce_tasks

    def __getitem__(self, index: int) -> list[tuple[Any, KeyValue]]:  # type: ignore[override]
        return self._shuffle.bucket_entries(index)
