"""A miniature distributed-file-system model for side outputs and job chaining.

The paper's workflow (Section III-A, Appendix II) chains two MR jobs:
Job 1 writes, per map task, an *additional output* file containing the
entities annotated with their blocking key, and Job 2 reads those files
with input-split splitting disabled so that its map task ``i`` sees
exactly the additional output of Job 1's map task ``i``.  This module
models that contract: named files of records, grouped by writer
(partition index), never re-split.
"""

from __future__ import annotations

from typing import Any, Iterable

from .types import KeyValue, Partition


class DfsError(KeyError):
    """Raised when a path is missing or written twice."""


class DistributedFileSystem:
    """In-memory stand-in for HDFS used to pass data between jobs.

    Files are append-only sequences of :class:`KeyValue` records keyed by
    a string path.  The convention ``<dir>/part-<index>`` mirrors
    Hadoop's per-task output files.
    """

    def __init__(self) -> None:
        self._files: dict[str, list[KeyValue]] = {}

    # -- writing ---------------------------------------------------------

    def create(self, path: str) -> None:
        if path in self._files:
            raise DfsError(f"path already exists: {path!r}")
        self._files[path] = []

    def append(self, path: str, key: Any, value: Any) -> None:
        try:
            self._files[path].append(KeyValue(key, value))
        except KeyError:
            raise DfsError(f"no such path: {path!r}") from None

    def write_records(self, path: str, records: Iterable[KeyValue]) -> None:
        self.create(path)
        self._files[path].extend(records)

    # -- reading ---------------------------------------------------------

    def exists(self, path: str) -> bool:
        return path in self._files

    def read(self, path: str) -> list[KeyValue]:
        try:
            return list(self._files[path])
        except KeyError:
            raise DfsError(f"no such path: {path!r}") from None

    def list_dir(self, directory: str) -> list[str]:
        prefix = directory.rstrip("/") + "/"
        return sorted(p for p in self._files if p.startswith(prefix))

    def read_dir(self, directory: str) -> list[KeyValue]:
        records: list[KeyValue] = []
        for path in self.list_dir(directory):
            records.extend(self._files[path])
        return records

    # -- job chaining ----------------------------------------------------

    @staticmethod
    def task_path(directory: str, partition_index: int) -> str:
        return f"{directory.rstrip('/')}/part-{partition_index:05d}"

    def read_as_partitions(self, directory: str) -> list[Partition]:
        """Expose a directory's per-task files as input partitions.

        Each ``part-<i>`` file becomes the partition with index ``i``;
        this is the "prohibit input-file splitting" trick of Appendix II
        that guarantees Job 2 sees Job 1's partitioning.
        """
        partitions = []
        for path in self.list_dir(directory):
            index = int(path.rsplit("-", 1)[1])
            partitions.append(Partition(self._files[path], index=index, name=path))
        partitions.sort(key=lambda p: p.index)
        for expected, part in enumerate(partitions):
            if part.index != expected:
                raise DfsError(
                    f"directory {directory!r} has non-contiguous partition "
                    f"indices (missing part-{expected:05d})"
                )
        return partitions

    def total_records(self, directory: str) -> int:
        return sum(len(self._files[p]) for p in self.list_dir(directory))
