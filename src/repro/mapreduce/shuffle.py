"""Shuffle phase: partition, sort, and group map output.

This is the part of the MR contract the paper's strategies lean on
hardest — composite keys are *partitioned* on one component, *sorted*
on the whole key and *grouped* on another projection, which is what
lets a reduce task receive several blocks (or pair ranges) in a
well-defined order.
"""

from __future__ import annotations

from typing import Any, Sequence

from .job import MapReduceJob
from .types import KeyValue, ReduceGroup


def partition_map_output(
    job: MapReduceJob,
    map_outputs: Sequence[Sequence[KeyValue]],
    num_reduce_tasks: int,
) -> list[list[KeyValue]]:
    """Route every map-output record to its reduce task.

    ``map_outputs`` is one record list per map task.  Records are
    appended in map-task order, matching the merge order a real shuffle
    would produce before sorting.
    """
    buckets: list[list[KeyValue]] = [[] for _ in range(num_reduce_tasks)]
    for task_output in map_outputs:
        for record in task_output:
            index = job.validate_partition(record.key, num_reduce_tasks)
            buckets[index].append(record)
    return buckets


def sort_bucket(job: MapReduceJob, bucket: Sequence[KeyValue]) -> list[KeyValue]:
    """Stably sort one reduce task's input by the job's sort projection.

    Stability matters: records with equal sort keys keep their map-task
    arrival order, which the BlockSplit reduce function exploits when it
    buffers the first sub-block of a cross-product match task.
    """
    return sorted(bucket, key=lambda record: job.sort_key(record.key))


def group_bucket(job: MapReduceJob, sorted_bucket: Sequence[KeyValue]) -> list[ReduceGroup]:
    """Split a sorted bucket into reduce groups by the group projection.

    Consecutive records whose ``group_key`` projections are equal form
    one group; the representative key of a group is the full key of its
    first record (Hadoop semantics).
    """
    groups: list[ReduceGroup] = []
    current_key: Any = None
    current_group_key: Any = None
    current_values: list[Any] = []
    have_group = False

    for record in sorted_bucket:
        gk = job.group_key(record.key)
        if have_group and gk == current_group_key:
            current_values.append(record.value)
        else:
            if have_group:
                groups.append(ReduceGroup(current_key, tuple(current_values)))
            current_key = record.key
            current_group_key = gk
            current_values = [record.value]
            have_group = True
    if have_group:
        groups.append(ReduceGroup(current_key, tuple(current_values)))
    return groups


def shuffle(
    job: MapReduceJob,
    map_outputs: Sequence[Sequence[KeyValue]],
    num_reduce_tasks: int,
) -> list[list[ReduceGroup]]:
    """Full shuffle: returns, per reduce task, its ordered reduce groups."""
    buckets = partition_map_output(job, map_outputs, num_reduce_tasks)
    return [group_bucket(job, sort_bucket(job, bucket)) for bucket in buckets]
