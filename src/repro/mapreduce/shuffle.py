"""Shuffle phase: partition, sort, and group map output.

This is the part of the MR contract the paper's strategies lean on
hardest — composite keys are *partitioned* on one component, *sorted*
on the whole key and *grouped* on another projection, which is what
lets a reduce task receive several blocks (or pair ranges) in a
well-defined order.
"""

from __future__ import annotations

from typing import Any, Sequence

from .job import MapReduceJob
from .types import KeyValue, ReduceGroup


def partition_map_output(
    job: MapReduceJob,
    map_outputs: Sequence[Sequence[KeyValue]],
    num_reduce_tasks: int,
) -> list[list[KeyValue]]:
    """Route every map-output record to its reduce task.

    ``map_outputs`` is one record list per map task.  Records are
    appended in map-task order, matching the merge order a real shuffle
    would produce before sorting.
    """
    buckets: list[list[KeyValue]] = [[] for _ in range(num_reduce_tasks)]
    for task_output in map_outputs:
        for record in task_output:
            index = job.validate_partition(record.key, num_reduce_tasks)
            buckets[index].append(record)
    return buckets


def sort_bucket(job: MapReduceJob, bucket: Sequence[KeyValue]) -> list[KeyValue]:
    """Stably sort one reduce task's input by the job's sort projection.

    Stability matters: records with equal sort keys keep their map-task
    arrival order, which the BlockSplit reduce function exploits when it
    buffers the first sub-block of a cross-product match task.

    The strategy jobs' sort projections are packed ints
    (:class:`~repro.mapreduce.types.KeyCodec`), so the comparisons
    inside ``sorted`` are single int compares rather than
    element-by-element tuple walks.
    """
    sort_key = job.sort_key
    return sorted(bucket, key=lambda record: sort_key(record.key))


def _walk_groups(keyed_records) -> list[ReduceGroup]:
    """Fold an in-sort-order stream of ``(group key, record)`` pairs
    into reduce groups.

    Consecutive pairs with equal group keys form one group; the
    representative key of a group is the full key of its first record
    (Hadoop semantics).  Every grouping entry point below shares this
    walk except :func:`shuffle_bucket`, whose packed fast path keeps an
    inlined copy — any change to the boundary semantics here must be
    mirrored there.
    """
    groups: list[ReduceGroup] = []
    current_key: Any = None
    current_group_key: Any = None
    current_values: list[Any] = []
    have_group = False
    for gk, record in keyed_records:
        if have_group and gk == current_group_key:
            current_values.append(record.value)
        else:
            if have_group:
                groups.append(ReduceGroup(current_key, tuple(current_values)))
            current_key = record.key
            current_group_key = gk
            current_values = [record.value]
            have_group = True
    if have_group:
        groups.append(ReduceGroup(current_key, tuple(current_values)))
    return groups


def group_bucket(job: MapReduceJob, sorted_bucket: Sequence[KeyValue]) -> list[ReduceGroup]:
    """Split a sorted bucket into reduce groups by the group projection."""
    group_key = job.group_key
    return _walk_groups((group_key(record.key), record) for record in sorted_bucket)


def shuffle_bucket(job: MapReduceJob, bucket: Sequence[KeyValue]) -> list[ReduceGroup]:
    """Sort and group one bucket in a single pass.

    Equivalent to ``group_bucket(job, sort_bucket(job, bucket))`` — the
    method-based path it falls back to — but when the job advertises a
    :class:`~repro.mapreduce.types.PackedProjection`, each key is
    packed exactly once into an int array, the *record indexes* are
    sorted against that array (a stable sort of ints: equal packed keys
    keep arrival order, and records themselves are never compared), and
    the group projection is two int ops on the already-packed value.
    The per-record Python-call cost of the sort/group projections — the
    dominant shuffle cost for composite keys — disappears.
    """
    projection = job.packed_projection
    if projection is None:
        return group_bucket(job, sort_bucket(job, bucket))
    encode = projection.codec.encode
    shift = projection.group_shift
    mask = projection.group_mask
    packed = [encode(record.key) for record in bucket]
    order = sorted(range(len(bucket)), key=packed.__getitem__)

    # Inlined copy of the _walk_groups boundary walk: this is the
    # hottest shuffle loop (every in-memory map output record passes
    # through it), so it avoids the generator indirection.  Keep the
    # group-boundary semantics in lockstep with _walk_groups.
    groups: list[ReduceGroup] = []
    current_key: Any = None
    current_group: int = -1
    current_values: list[Any] = []
    have_group = False
    for index in order:
        gk = (packed[index] >> shift) & mask
        record = bucket[index]
        if have_group and gk == current_group:
            current_values.append(record.value)
        else:
            if have_group:
                groups.append(ReduceGroup(current_key, tuple(current_values)))
            current_key = record.key
            current_group = gk
            current_values = [record.value]
            have_group = True
    if have_group:
        groups.append(ReduceGroup(current_key, tuple(current_values)))
    return groups


def group_presorted_entries(
    job: MapReduceJob, entries: Sequence[tuple[Any, KeyValue]]
) -> list[ReduceGroup]:
    """Group a pre-sorted bucket of ``(sort key, record)`` entries.

    The spill path ends here: :class:`~repro.mapreduce.external_shuffle.
    ExternalShuffle` computes each record's sort projection exactly once
    (in ``add``), merges its run files by it, and hands the pairs over
    wholesale — so for packed jobs the group walk is a shift/mask of the
    *already-encoded* int, with no second ``encode`` per record.
    Non-packed jobs group by the method projection, as the sort key is
    an arbitrary projection that need not determine the group key.
    """
    projection = job.packed_projection
    if projection is None:
        return group_bucket(job, [record for _sort_key, record in entries])
    shift = projection.group_shift
    mask = projection.group_mask
    return _walk_groups(
        ((packed >> shift) & mask, record) for packed, record in entries
    )


def group_presorted_bucket(
    job: MapReduceJob, sorted_bucket: Sequence[KeyValue]
) -> list[ReduceGroup]:
    """Group a record-only bucket that is already in sort order.

    Like :func:`group_presorted_entries` but for callers that no longer
    have the sort keys at hand: packed jobs pay one ``encode`` per
    record for the group walk; others take the method-based
    :func:`group_bucket`.
    """
    projection = job.packed_projection
    if projection is None:
        return group_bucket(job, sorted_bucket)
    encode = projection.codec.encode
    shift = projection.group_shift
    mask = projection.group_mask
    return _walk_groups(
        ((encode(record.key) >> shift) & mask, record)
        for record in sorted_bucket
    )


def shuffle(
    job: MapReduceJob,
    map_outputs: Sequence[Sequence[KeyValue]],
    num_reduce_tasks: int,
) -> list[list[ReduceGroup]]:
    """Full shuffle: returns, per reduce task, its ordered reduce groups."""
    buckets = partition_map_output(job, map_outputs, num_reduce_tasks)
    return [shuffle_bucket(job, bucket) for bucket in buckets]
