"""The MapReduce job contract.

A job supplies the five user functions of the paper's Section II:

* ``map`` and ``reduce`` — the sequential user code;
* ``partition`` — routes a map-output key to a reduce *task*;
* ``sort_key`` — projection of the key used for sorting within a task;
* ``group_key`` — projection used to form reduce groups.

All three routing functions operate on keys only, never values, exactly
as in the MR model.  Jobs may also define an associative ``combine``
(the BDM job uses one as the paper's footnote 2 suggests) and a
``configure`` hook that mirrors Hadoop's per-task setup (``map
configure(m, r, partitionIndex)`` in the paper's pseudo-code).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from .counters import Counters


@dataclass(frozen=True, slots=True)
class JobConfig:
    """Static job parameters shared by every task of a job.

    ``num_map_tasks`` (m) and ``num_reduce_tasks`` (r) follow the
    paper's notation.  ``properties`` carries job-specific settings
    (e.g. the serialized BDM location) like Hadoop's JobConf.
    """

    num_map_tasks: int
    num_reduce_tasks: int
    properties: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_map_tasks <= 0:
            raise ValueError(f"num_map_tasks must be positive, got {self.num_map_tasks}")
        if self.num_reduce_tasks <= 0:
            raise ValueError(f"num_reduce_tasks must be positive, got {self.num_reduce_tasks}")


class TaskContext:
    """Per-task runtime services handed to user code.

    Provides the task identity (``partition_index`` for map tasks,
    ``reduce_index`` for reduce tasks), counters, and side-output
    emission (the paper's ``additionalOutput``).
    """

    def __init__(
        self,
        config: JobConfig,
        *,
        partition_index: int | None = None,
        reduce_index: int | None = None,
        side_writer: Callable[[str, Any, Any], None] | None = None,
    ):
        self.config = config
        self.partition_index = partition_index
        self.reduce_index = reduce_index
        self.counters = Counters()
        self._side_writer = side_writer

    @property
    def num_map_tasks(self) -> int:
        return self.config.num_map_tasks

    @property
    def num_reduce_tasks(self) -> int:
        return self.config.num_reduce_tasks

    def side_output(self, directory: str, key: Any, value: Any) -> None:
        """Write a record to this task's side-output file under ``directory``."""
        if self._side_writer is None:
            raise RuntimeError("side outputs are not available in this task")
        self._side_writer(directory, key, value)


Emitter = Callable[[Any, Any], None]


class MapReduceJob:
    """Base class for jobs; subclass and override the pieces you need.

    The default routing behaviour matches Hadoop's defaults: hash
    partitioning on the whole key, sorting and grouping on the whole
    key.  Composite-key jobs override :meth:`partition` and
    :meth:`group_key` (and occasionally :meth:`sort_key`).
    """

    #: Human-readable job name used in logs and simulation timelines.
    name: str = "job"

    #: Optional packed sort/group projection spec (see
    #: :class:`~repro.mapreduce.types.PackedProjection`).  Jobs whose
    #: composite-key fields are bounded ints set an instance attribute;
    #: the shuffle then sorts on single packed ints and derives group
    #: boundaries from them instead of calling :meth:`sort_key` /
    #: :meth:`group_key` per record.
    packed_projection = None

    # -- lifecycle hooks ---------------------------------------------------

    def configure_map(self, context: TaskContext) -> None:
        """Called once per map task before any ``map`` call."""

    def configure_reduce(self, context: TaskContext) -> None:
        """Called once per reduce task before any ``reduce`` call."""

    # -- user functions ----------------------------------------------------

    def map(self, key: Any, value: Any, emit: Emitter, context: TaskContext) -> None:
        raise NotImplementedError

    def reduce(self, key: Any, values: Sequence[Any], emit: Emitter, context: TaskContext) -> None:
        raise NotImplementedError

    def combine(self, key: Any, values: Sequence[Any]) -> Iterable[tuple[Any, Any]] | None:
        """Optional combiner; return replacement ``(key, value)`` pairs.

        Returning ``None`` (the default) disables combining.  The
        combiner runs once per map task over that task's output, grouped
        by the full key — the standard Hadoop contract for an
        associative, commutative aggregation.
        """
        return None

    # -- routing functions ---------------------------------------------------

    def partition(self, key: Any, num_reduce_tasks: int) -> int:
        """Route ``key`` to a reduce task index in ``[0, num_reduce_tasks)``."""
        return stable_hash(key) % num_reduce_tasks

    def sort_key(self, key: Any) -> Any:
        """Projection of ``key`` used for sorting inside a reduce task.

        When the job advertises a :attr:`packed_projection`, this *is*
        the packed encoding — defined here once so the method-based
        paths (external shuffle, combiner) can never drift from the
        projection the fast shuffle uses directly.
        """
        projection = self.packed_projection
        return projection.codec.encode(key) if projection is not None else key

    def group_key(self, key: Any) -> Any:
        """Projection of ``key`` used to form reduce groups.

        With a :attr:`packed_projection` this is the shift/mask of the
        packed sort key; jobs whose *unpacked* group projection is not
        the full key override this and delegate to ``super()`` for the
        packed case.
        """
        projection = self.packed_projection
        if projection is None:
            return key
        return (
            projection.codec.encode(key) >> projection.group_shift
        ) & projection.group_mask

    # -- convenience ---------------------------------------------------------

    def validate_partition(self, key: Any, num_reduce_tasks: int) -> int:
        index = self.partition(key, num_reduce_tasks)
        if not 0 <= index < num_reduce_tasks:
            raise ValueError(
                f"job {self.name!r}: partition({key!r}) returned {index}, "
                f"outside [0, {num_reduce_tasks})"
            )
        return index


def stable_hash(value: Any) -> int:
    """A deterministic, process-independent hash for partitioning.

    ``hash()`` on strings is salted per process (PYTHONHASHSEED), which
    would make partitioning — and therefore the Basic strategy's skew
    behaviour — irreproducible between runs.  We use FNV-1a over the
    ``repr`` of the key instead: stable, fast, and adequate spread.
    """
    data = repr(value).encode("utf-8")
    h = 0xCBF29CE484222325
    for byte in data:
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


class LambdaJob(MapReduceJob):
    """Adapter building a job from plain functions — handy in tests.

    Example::

        job = LambdaJob(
            map_fn=lambda k, v, emit, ctx: emit(v % 2, v),
            reduce_fn=lambda k, vs, emit, ctx: emit(k, sum(vs)),
        )
    """

    def __init__(
        self,
        map_fn: Callable[[Any, Any, Emitter, TaskContext], None],
        reduce_fn: Callable[[Any, Sequence[Any], Emitter, TaskContext], None],
        *,
        partition_fn: Callable[[Any, int], int] | None = None,
        sort_key_fn: Callable[[Any], Any] | None = None,
        group_key_fn: Callable[[Any], Any] | None = None,
        combine_fn: Callable[[Any, Sequence[Any]], Iterable[tuple[Any, Any]]] | None = None,
        name: str = "lambda-job",
    ):
        self._map_fn = map_fn
        self._reduce_fn = reduce_fn
        self._partition_fn = partition_fn
        self._sort_key_fn = sort_key_fn
        self._group_key_fn = group_key_fn
        self._combine_fn = combine_fn
        self.name = name

    def map(self, key: Any, value: Any, emit: Emitter, context: TaskContext) -> None:
        self._map_fn(key, value, emit, context)

    def reduce(self, key: Any, values: Sequence[Any], emit: Emitter, context: TaskContext) -> None:
        self._reduce_fn(key, values, emit, context)

    def partition(self, key: Any, num_reduce_tasks: int) -> int:
        if self._partition_fn is None:
            return super().partition(key, num_reduce_tasks)
        return self._partition_fn(key, num_reduce_tasks)

    def sort_key(self, key: Any) -> Any:
        if self._sort_key_fn is None:
            return super().sort_key(key)
        return self._sort_key_fn(key)

    def group_key(self, key: Any) -> Any:
        if self._group_key_fn is None:
            return super().group_key(key)
        return self._group_key_fn(key)

    def combine(self, key: Any, values: Sequence[Any]):
        if self._combine_fn is None:
            return None
        return self._combine_fn(key, values)
