"""Hadoop-style counters.

Counters are the runtime's measurement backbone: the cluster simulator
derives task costs from them (records read, KV pairs emitted, pair
comparisons performed), and the analysis layer reads them to reproduce
Figure 12 (map output sizes) without instrumenting user code.
"""

from __future__ import annotations

from collections import Counter as _Counter
from typing import Iterable, Iterator


class Counters:
    """A mutable group of named integer counters.

    Counter names are free-form strings; the runtime uses a few
    well-known names (see :class:`StandardCounter`).
    """

    __slots__ = ("_values",)

    def __init__(self, initial: dict[str, int] | None = None):
        self._values: _Counter[str] = _Counter(initial or {})

    def increment(self, name: str, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be non-negative, got {amount}")
        self._values[name] += amount

    def get(self, name: str) -> int:
        return self._values.get(name, 0)

    def merge(self, other: "Counters") -> None:
        """Add all of ``other``'s counts into this group."""
        self._values.update(other._values)

    def as_dict(self) -> dict[str, int]:
        return dict(self._values)

    def names(self) -> Iterable[str]:
        return self._values.keys()

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(sorted(self._values.items()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Counters):
            return NotImplemented
        return dict(self._values) == dict(other._values)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"Counters({inner})"

    @classmethod
    def merged(cls, groups: Iterable["Counters"]) -> "Counters":
        out = cls()
        for g in groups:
            out.merge(g)
        return out


class StandardCounter:
    """Well-known counter names maintained by the runtime itself."""

    MAP_INPUT_RECORDS = "map.input.records"
    MAP_OUTPUT_RECORDS = "map.output.records"
    COMBINE_INPUT_RECORDS = "combine.input.records"
    COMBINE_OUTPUT_RECORDS = "combine.output.records"
    REDUCE_INPUT_GROUPS = "reduce.input.groups"
    REDUCE_INPUT_RECORDS = "reduce.input.records"
    REDUCE_OUTPUT_RECORDS = "reduce.output.records"
    SIDE_OUTPUT_RECORDS = "side.output.records"
    # Maintained by the ER matcher rather than the engine:
    PAIR_COMPARISONS = "er.pair.comparisons"
    PAIRS_MATCHED = "er.pairs.matched"


def flush_pair_counters(context, comparisons: int, matched: int) -> None:
    """Batch-increment the pair counters once per reduce group.

    The reduce hot loops count comparisons/matches in local ints and
    flush them here instead of paying a counter-map update per pair.
    Totals are identical to per-pair increments, and zero counts never
    touch the counter map (matching loops that never reached a pair).
    """
    if comparisons:
        context.counters.increment(StandardCounter.PAIR_COMPARISONS, comparisons)
    if matched:
        context.counters.increment(StandardCounter.PAIRS_MATCHED, matched)
