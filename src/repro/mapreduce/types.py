"""Basic value types for the in-process MapReduce runtime.

The runtime models data as ``(key, value)`` pairs exactly like Hadoop.
Keys are ordinary Python objects; composite keys are tuples.  The paper's
strategies rely on *composite* keys whose components drive partitioning,
sorting and grouping independently (Section II of the paper), so the
runtime never assumes anything about key structure beyond comparability
of the sort projection.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Generic, Iterator, Sequence, TypeVar

K = TypeVar("K")
V = TypeVar("V")


class KeyCodec:
    """Packs a tuple of bounded non-negative ints into one sortable int.

    Each field ``f_i`` must satisfy ``0 <= f_i < limits[i]``; fields are
    laid out most-significant-first, so comparing two packed ints is
    exactly the lexicographic comparison of the original tuples — but a
    single C-level int compare instead of a tuple walk.  The strategy
    jobs use codecs for their *sort* and *group* projections: the
    shuffle then sorts runs of packed ints (cheaper compares, and far
    smaller pickles in the spill files of
    :class:`~repro.mapreduce.external_shuffle.ExternalShuffle`), while
    the composite :class:`~repro.core.keys` named tuples still flow to
    the reduce functions untouched.

    ``encode`` validates every field against its limit — an
    out-of-range field would silently corrupt the sort order otherwise.
    It is specialised at construction time into a generated flat
    function (the :func:`collections.namedtuple` technique): encoding
    runs per map-output record, so the generic shift loop would cost
    more than the tuple comparisons it replaces.

    ``field_maps`` translates non-int fields in place: a mapping from
    field index to a value → rank dict, e.g. ``{4: {"R": 0, "S": 1}}``
    for the two-source jobs' source tag.  Ranks must follow the
    original values' sort order for the packed order to stay
    lexicographic.  Unknown values fail the range check and raise.
    """

    __slots__ = (
        "limits", "widths", "shifts", "total_bits", "field_maps", "encode"
    )

    def __init__(self, *limits: int, field_maps: dict[int, dict] | None = None):
        if not limits:
            raise ValueError("KeyCodec needs at least one field limit")
        for limit in limits:
            if limit < 1:
                raise ValueError(f"field limits must be >= 1, got {limit}")
        self.field_maps = dict(field_maps or {})
        for index in self.field_maps:
            if not 0 <= index < len(limits):
                raise ValueError(f"field_maps index {index} outside fields")
        self.limits = tuple(limits)
        self.widths = tuple(max(1, (limit - 1).bit_length()) for limit in limits)
        shifts = []
        shift = 0
        for width in reversed(self.widths):
            shifts.append(shift)
            shift += width
        self.shifts = tuple(reversed(shifts))
        self.total_bits = shift
        #: encode(fields) -> int — packs one field per limit, in order.
        self.encode = self._build_encoder()

    def _build_encoder(self):
        """Generate the specialised ``encode`` for this field layout."""
        n = len(self.limits)
        names = [f"f{i}" for i in range(n)]
        namespace: dict[str, Any] = {}
        loads = [f"    {', '.join(names)}{',' if n == 1 else ''} = fields"]
        for i, name in enumerate(names):
            if i in self.field_maps:
                namespace[f"_map{i}"] = self.field_maps[i]
                # Unknown values become -1 and fail the range check.
                loads.append(f"    {name} = _map{i}.get({name}, -1)")
        checks = " or ".join(
            f"not 0 <= {name} < {limit}"
            for name, limit in zip(names, self.limits)
        )
        terms = " | ".join(
            f"({name} << {shift})" if shift else name
            for name, shift in zip(names, self.shifts)
        )
        source = (
            f"def encode(fields):\n"
            f"    if len(fields) != {n}:\n"
            f"        raise ValueError(\n"
            f"            f'expected {n} fields, got {{len(fields)}}')\n"
            + "\n".join(loads) + "\n"
            f"    if {checks}:\n"
            f"        raise ValueError(\n"
            f"            f'fields {{fields!r}} outside limits {self.limits}')\n"
            f"    return {terms}\n"
        )
        exec(source, namespace)  # noqa: S102 — generated from ints only
        return namespace["encode"]

    def decode(self, packed: int) -> tuple[int, ...]:
        """Inverse of :meth:`encode` (mapped fields come back as ranks)."""
        if packed < 0 or packed >= (1 << self.total_bits):
            raise ValueError(f"packed value {packed} outside codec range")
        fields = []
        for width in reversed(self.widths):
            fields.append(packed & ((1 << width) - 1))
            packed >>= width
        return tuple(reversed(fields))

    def __reduce__(self):
        # The generated encoder is not picklable; rebuild from limits
        # (jobs carrying codecs ship to worker processes).
        return (_rebuild_key_codec, (self.limits, self.field_maps))

    def __repr__(self) -> str:
        return f"KeyCodec{self.limits}"


def _rebuild_key_codec(limits: tuple[int, ...], field_maps: dict) -> KeyCodec:
    """Unpickle helper: regenerate the codec (and its encoder)."""
    return KeyCodec(*limits, field_maps=field_maps)


@dataclass(frozen=True, slots=True)
class PackedProjection:
    """A job's packed sort projection and how grouping derives from it.

    ``codec.encode(key)`` is the sort projection.  Because every
    strategy's group projection is a sub-span of its sort fields, the
    group projection is recovered from the *same* packed int as
    ``(packed >> group_shift) & group_mask`` — so the combined
    sort-and-group pass (:func:`~repro.mapreduce.shuffle.shuffle_bucket`)
    encodes each key exactly once and derives group boundaries with two
    int ops per record, no further Python calls.

    ``MapReduceJob.sort_key``/``group_key`` read the advertised
    projection directly, so the method-based paths (combiner, tuple
    fallbacks) are consistent with it by construction — jobs only
    override ``group_key`` to supply their *unpacked* fallback
    projection.
    """

    codec: KeyCodec
    group_shift: int
    group_mask: int

    @classmethod
    def full_key(cls, codec: KeyCodec) -> "PackedProjection":
        """Grouping on the entire sort key (e.g. BlockSplit)."""
        return cls.span(codec, 0, len(codec.widths))

    @classmethod
    def prefix(cls, codec: KeyCodec, num_fields: int) -> "PackedProjection":
        """Grouping on the first ``num_fields`` sort fields."""
        return cls.span(codec, 0, num_fields)

    @classmethod
    def span(cls, codec: KeyCodec, start: int, stop: int) -> "PackedProjection":
        """Grouping on the contiguous sort fields ``[start, stop)``.

        Covers mid-key group projections like two-source BlockSplit's
        ``(block, i, j)`` out of ``(reduce, block, i, j, source)``:
        shift away the fields after ``stop``, mask away those before
        ``start``.
        """
        if not 0 <= start < stop <= len(codec.widths):
            raise ValueError(
                f"span [{start}, {stop}) outside codec {codec.limits}"
            )
        shift = sum(codec.widths[stop:])
        return cls(codec, shift, (1 << sum(codec.widths[start:stop])) - 1)


#: Process-wide switch for packed-int sort/group projections.  Jobs
#: capture the flag at construction time (so it survives pickling into
#: worker processes); flip it around pipeline construction, not after.
_PACKED_KEYS = True


def packed_keys_enabled() -> bool:
    """Whether strategy jobs built from now on pack their projections."""
    return _PACKED_KEYS


def set_packed_keys(enabled: bool) -> None:
    """Enable/disable packed-key projections for jobs built afterwards.

    Exists for the equivalence tests and ``benchmarks/perf_harness.py``,
    which prove/measure the packed and tuple shuffle paths against each
    other; production code has no reason to turn this off.
    """
    global _PACKED_KEYS
    _PACKED_KEYS = bool(enabled)


@contextmanager
def packed_keys(enabled: bool) -> Iterator[None]:
    """Scoped :func:`set_packed_keys` (restores the previous value)."""
    previous = _PACKED_KEYS
    set_packed_keys(enabled)
    try:
        yield
    finally:
        set_packed_keys(previous)


@dataclass(frozen=True, slots=True)
class KeyValue(Generic[K, V]):
    """A single ``(key, value)`` record flowing through a job."""

    key: K
    value: V

    def as_tuple(self) -> tuple[K, V]:
        return (self.key, self.value)

    def __iter__(self) -> Iterator[Any]:
        # Allows ``key, value = kv`` unpacking at call sites.
        return iter((self.key, self.value))


@dataclass(frozen=True, slots=True)
class ReduceGroup(Generic[K, V]):
    """One reduce-function invocation: a group key and its value list.

    ``key`` is the full composite key of the *first* record in the group
    (Hadoop semantics: the reduce function sees one representative key,
    while grouping may have used only a projection of it).
    """

    key: K
    values: tuple[V, ...]

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[V]:
        # Iterating the group is iterating its values — callers need not
        # touch (or copy) the ``values`` tuple for a single pass.
        return iter(self.values)


class Partition(Sequence[KeyValue]):
    """An ordered, immutable input partition (one map task's input).

    The paper's workflow requires both MR jobs to read *the same
    partitioning* of the input (Section III-A); modelling partitions as
    first-class objects with a stable ``index`` makes that contract
    explicit and testable.
    """

    __slots__ = ("_records", "index", "name")

    def __init__(self, records: Sequence[KeyValue], index: int, name: str | None = None):
        if index < 0:
            raise ValueError(f"partition index must be >= 0, got {index}")
        self._records = tuple(records)
        self.index = index
        self.name = name if name is not None else f"part-{index:05d}"

    @classmethod
    def from_pairs(cls, pairs: Sequence[tuple[Any, Any]], index: int, name: str | None = None) -> "Partition":
        return cls([KeyValue(k, v) for k, v in pairs], index, name)

    @classmethod
    def from_values(cls, values: Sequence[Any], index: int, name: str | None = None) -> "Partition":
        """Build a partition of ``(None, value)`` records (offset keys unused)."""
        return cls([KeyValue(None, v) for v in values], index, name)

    def __getitem__(self, i):  # type: ignore[override]
        return self._records[i]

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[KeyValue]:
        return iter(self._records)

    def __repr__(self) -> str:
        return f"Partition(index={self.index}, records={len(self._records)})"


def shard_bounds(num_records: int, num_shards: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` ranges splitting ``num_records`` into
    ``num_shards`` near-equal shards (sizes differ by at most one).

    This is *the* splitting rule: :func:`make_partitions` and the
    streaming sources in :mod:`repro.io` both build on it, which is what
    makes sharded and in-memory inputs byte-identical.
    """
    if num_shards <= 0:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    base, extra = divmod(num_records, num_shards)
    bounds: list[tuple[int, int]] = []
    start = 0
    for index in range(num_shards):
        size = base + (1 if index < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def make_partitions(values: Sequence[Any], num_partitions: int) -> list[Partition]:
    """Split ``values`` into ``num_partitions`` contiguous, near-equal partitions.

    Mirrors how a DFS splits an input file into fixed-size splits: record
    order is preserved and partition sizes differ by at most one (the
    :func:`shard_bounds` rule).
    """
    return [
        Partition.from_values(values[start:stop], index=i)
        for i, (start, stop) in enumerate(shard_bounds(len(values), num_partitions))
    ]
