"""Basic value types for the in-process MapReduce runtime.

The runtime models data as ``(key, value)`` pairs exactly like Hadoop.
Keys are ordinary Python objects; composite keys are tuples.  The paper's
strategies rely on *composite* keys whose components drive partitioning,
sorting and grouping independently (Section II of the paper), so the
runtime never assumes anything about key structure beyond comparability
of the sort projection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generic, Iterator, Sequence, TypeVar

K = TypeVar("K")
V = TypeVar("V")


@dataclass(frozen=True, slots=True)
class KeyValue(Generic[K, V]):
    """A single ``(key, value)`` record flowing through a job."""

    key: K
    value: V

    def as_tuple(self) -> tuple[K, V]:
        return (self.key, self.value)

    def __iter__(self) -> Iterator[Any]:
        # Allows ``key, value = kv`` unpacking at call sites.
        return iter((self.key, self.value))


@dataclass(frozen=True, slots=True)
class ReduceGroup(Generic[K, V]):
    """One reduce-function invocation: a group key and its value list.

    ``key`` is the full composite key of the *first* record in the group
    (Hadoop semantics: the reduce function sees one representative key,
    while grouping may have used only a projection of it).
    """

    key: K
    values: tuple[V, ...]

    def __len__(self) -> int:
        return len(self.values)


class Partition(Sequence[KeyValue]):
    """An ordered, immutable input partition (one map task's input).

    The paper's workflow requires both MR jobs to read *the same
    partitioning* of the input (Section III-A); modelling partitions as
    first-class objects with a stable ``index`` makes that contract
    explicit and testable.
    """

    __slots__ = ("_records", "index", "name")

    def __init__(self, records: Sequence[KeyValue], index: int, name: str | None = None):
        if index < 0:
            raise ValueError(f"partition index must be >= 0, got {index}")
        self._records = tuple(records)
        self.index = index
        self.name = name if name is not None else f"part-{index:05d}"

    @classmethod
    def from_pairs(cls, pairs: Sequence[tuple[Any, Any]], index: int, name: str | None = None) -> "Partition":
        return cls([KeyValue(k, v) for k, v in pairs], index, name)

    @classmethod
    def from_values(cls, values: Sequence[Any], index: int, name: str | None = None) -> "Partition":
        """Build a partition of ``(None, value)`` records (offset keys unused)."""
        return cls([KeyValue(None, v) for v in values], index, name)

    def __getitem__(self, i):  # type: ignore[override]
        return self._records[i]

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[KeyValue]:
        return iter(self._records)

    def __repr__(self) -> str:
        return f"Partition(index={self.index}, records={len(self._records)})"


def shard_bounds(num_records: int, num_shards: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` ranges splitting ``num_records`` into
    ``num_shards`` near-equal shards (sizes differ by at most one).

    This is *the* splitting rule: :func:`make_partitions` and the
    streaming sources in :mod:`repro.io` both build on it, which is what
    makes sharded and in-memory inputs byte-identical.
    """
    if num_shards <= 0:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    base, extra = divmod(num_records, num_shards)
    bounds: list[tuple[int, int]] = []
    start = 0
    for index in range(num_shards):
        size = base + (1 if index < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def make_partitions(values: Sequence[Any], num_partitions: int) -> list[Partition]:
    """Split ``values`` into ``num_partitions`` contiguous, near-equal partitions.

    Mirrors how a DFS splits an input file into fixed-size splits: record
    order is preserved and partition sizes differ by at most one (the
    :func:`shard_bounds` rule).
    """
    return [
        Partition.from_values(values[start:stop], index=i)
        for i, (start, stop) in enumerate(shard_bounds(len(values), num_partitions))
    ]
