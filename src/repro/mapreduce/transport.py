"""Length-prefixed message framing for the distributed runtime.

The distributed backend moves whole Python objects — schedulable task
units and their results — between the driver and its worker processes
over localhost TCP sockets.  This module is the wire layer both sides
share: a message is one pickle, framed by an 8-byte big-endian length
prefix, so the stream needs no delimiters and arbitrarily large task
payloads (a reduce bucket, a matching job with its BDM) travel intact.

The layer is deliberately dumb.  It knows nothing about tasks,
heartbeats or retries — those are protocol conventions of
:mod:`repro.engine.distributed` (driver side) and :mod:`repro.worker`
(worker side).  What it does guarantee:

* **Framing** — :meth:`Connection.send` is atomic per message (one
  serialize, one locked ``sendall``), and :meth:`Connection.recv`
  returns exactly one message or raises.  Interleaved writers (the
  worker's main loop and its heartbeat thread) therefore never corrupt
  the stream.
* **Failure taxonomy** — transport problems (peer gone, stream cut
  mid-frame) surface as :class:`ConnectionClosed` /
  :class:`TransportError`, while *serialization* problems (an
  unpicklable job) propagate as the underlying pickling error, raised
  before any byte hits the socket.  The driver relies on this split to
  tell "worker died, requeue the task" from "this job can never be
  shipped, fail now".

Pickle over a socket is only safe between mutually-trusting processes;
the driver binds to ``127.0.0.1`` and workers authenticate first —
with a random per-cluster token handed down through the environment
(never argv, which other local users could read from ``/proc``) and
sent as a **raw fixed-length byte preamble**, compared by the driver
*before* the first pickled message is read (:meth:`Connection.
recv_raw`).  An unauthenticated peer therefore never gets a pickle
deserialized.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
from typing import Any

#: Environment variable carrying the per-cluster authentication token
#: from driver to spawned workers (the environment, unlike argv, is not
#: readable by other local users).
ENV_TOKEN = "REPRO_WORKER_TOKEN"

#: Frame header: unsigned 64-bit big-endian payload length.
_HEADER = struct.Struct(">Q")

#: Refuse absurd frames (corrupt header / wrong protocol speaker).
MAX_FRAME_BYTES = 1 << 40


class TransportError(ConnectionError):
    """A message could not be moved across the wire."""


class ConnectionClosed(TransportError):
    """The peer closed the connection (cleanly or mid-frame)."""


class RemoteTaskError(RuntimeError):
    """A task raised in a worker and its exception could not be pickled
    back; carries the remote ``repr`` and traceback text instead."""


def encode_message(message: Any) -> bytes:
    """One message as a framed byte string (header + pickle).

    Serialization errors (an unpicklable payload) propagate as raised
    by :mod:`pickle` — callers that must distinguish "cannot serialize"
    from "cannot deliver" encode first, then send the bytes.
    """
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(len(payload)) + payload


class Connection:
    """One bidirectional message stream over a connected socket.

    Sending is thread-safe (a lock serializes whole frames); receiving
    is meant for a single reader thread, which is how both the worker
    main loop and the driver's per-worker receiver threads use it.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._send_lock = threading.Lock()
        self._closed = False

    # -- sending -------------------------------------------------------------

    def send_bytes(self, frame: bytes) -> None:
        """Ship one pre-encoded frame (see :func:`encode_message`)."""
        try:
            with self._send_lock:
                self._sock.sendall(frame)
        except OSError as exc:
            raise ConnectionClosed(f"peer unreachable: {exc}") from exc

    def send(self, message: Any) -> None:
        """Encode and ship one message.

        Pickling errors raise *before* any byte is written, so a failed
        ``send`` never leaves a half frame on the stream.
        """
        self.send_bytes(encode_message(message))

    # -- receiving -----------------------------------------------------------

    def recv(self, timeout: float | None = None) -> Any:
        """Block for the next whole message.

        Raises :class:`ConnectionClosed` on EOF (including EOF inside a
        frame) and :class:`TransportError` on a corrupt header or a
        ``timeout`` (seconds) elapsing; ``None`` waits forever.
        """
        try:
            self._sock.settimeout(timeout)
            header = self._recv_exact(_HEADER.size)
            (length,) = _HEADER.unpack(header)
            if length > MAX_FRAME_BYTES:
                raise TransportError(f"frame of {length} bytes refused")
            return pickle.loads(self._recv_exact(length))
        except socket.timeout as exc:
            raise TransportError(f"no message within {timeout}s") from exc
        except OSError as exc:
            raise ConnectionClosed(f"connection lost: {exc}") from exc
        finally:
            try:
                self._sock.settimeout(None)
            except OSError:
                pass

    def recv_raw(self, count: int, timeout: float | None = None) -> bytes:
        """Read exactly ``count`` raw bytes — no framing, no pickle.

        This is the authentication primitive: the driver reads a
        worker's fixed-length token preamble with it and compares
        *bytes* before the first :meth:`recv`, so no attacker-supplied
        pickle is ever deserialized on an unauthenticated connection.
        """
        try:
            self._sock.settimeout(timeout)
            return self._recv_exact(count)
        except socket.timeout as exc:
            raise TransportError(f"no data within {timeout}s") from exc
        except OSError as exc:
            raise ConnectionClosed(f"connection lost: {exc}") from exc
        finally:
            try:
                self._sock.settimeout(None)
            except OSError:
                pass

    def _recv_exact(self, count: int) -> bytes:
        chunks: list[bytes] = []
        remaining = count
        while remaining:
            chunk = self._sock.recv(min(remaining, 1 << 20))
            if not chunk:
                raise ConnectionClosed(
                    f"peer closed with {remaining} of {count} bytes unread"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Tear the stream down (idempotent); pending ``recv`` unblocks."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def __repr__(self) -> str:
        return f"Connection(closed={self._closed})"


class Listener:
    """An accept socket for the pickled-message protocol.

    The distributed driver uses the defaults (loopback only, ephemeral
    port); the serve daemon passes an explicit ``port`` (and possibly
    a non-loopback ``host``) so clients can find it.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen()
        #: ``(host, port)`` peers are told to connect to.
        self.address: tuple[str, int] = self._sock.getsockname()[:2]

    def accept(self, timeout: float | None = None) -> Connection:
        """Wait for one worker connection."""
        try:
            self._sock.settimeout(timeout)
            sock, _ = self._sock.accept()
        except socket.timeout as exc:
            raise TransportError(
                f"no worker connected within {timeout}s"
            ) from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return Connection(sock)

    def close(self) -> None:
        self._sock.close()

    def __repr__(self) -> str:
        return f"Listener(address={self.address})"


def connect(host: str, port: int, timeout: float = 30.0) -> Connection:
    """A worker's client end of the stream."""
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        raise TransportError(f"cannot reach driver at {host}:{port}: {exc}") from exc
    try:
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:
        sock.close()
        raise
    return Connection(sock)


def shippable_exception(exc: BaseException) -> BaseException:
    """``exc`` if it survives a pickle round trip, else a
    :class:`RemoteTaskError` carrying its repr and traceback text.

    Workers use this to report task failures: the driver re-raises the
    original exception type whenever possible (so failure-propagation
    semantics match the in-process backends) and a descriptive
    :class:`RemoteTaskError` otherwise.
    """
    import traceback

    try:
        candidate = pickle.loads(pickle.dumps(exc))
    # A round-trip probe: user __reduce__/__setstate__ hooks can raise
    # anything, and every failure means the same thing — not shippable.
    except Exception:  # repro-lint: disable=silent-except -- probe by design
        candidate = None
    if type(candidate) is type(exc):
        return exc
    detail = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )
    return RemoteTaskError(f"task failed remotely: {exc!r}\n{detail}")
