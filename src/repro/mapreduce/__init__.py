"""An in-process, deterministic MapReduce runtime.

This package is the substrate the paper's algorithms run on.  It
implements the full MR contract from Section II of the paper —
``map``/``reduce`` user functions plus the ``part``/``comp``/``group``
routing functions over composite keys — together with Hadoop-style
counters, combiners, and side outputs chained through an in-memory
distributed file system.
"""

from .counters import Counters, StandardCounter
from .dfs import DfsError, DistributedFileSystem
from .events import EventChannel, EventKind, ExecutionEvent, PipelineCancelled
from .external_shuffle import ExternalShuffle
from .job import Emitter, JobConfig, LambdaJob, MapReduceJob, TaskContext, stable_hash
from .runtime import JobResult, LocalRuntime, MapTaskResult, ReduceTaskResult
from .shuffle import (
    group_bucket,
    group_presorted_bucket,
    group_presorted_entries,
    partition_map_output,
    shuffle,
    shuffle_bucket,
    sort_bucket,
)
from .types import (
    KeyCodec,
    KeyValue,
    PackedProjection,
    Partition,
    ReduceGroup,
    make_partitions,
    packed_keys,
    packed_keys_enabled,
    set_packed_keys,
    shard_bounds,
)

__all__ = [
    "KeyCodec",
    "PackedProjection",
    "packed_keys",
    "packed_keys_enabled",
    "set_packed_keys",
    "shuffle_bucket",
    "group_presorted_bucket",
    "group_presorted_entries",
    "EventChannel",
    "EventKind",
    "ExecutionEvent",
    "PipelineCancelled",
    "Counters",
    "StandardCounter",
    "DfsError",
    "DistributedFileSystem",
    "ExternalShuffle",
    "Emitter",
    "JobConfig",
    "LambdaJob",
    "MapReduceJob",
    "TaskContext",
    "stable_hash",
    "JobResult",
    "LocalRuntime",
    "MapTaskResult",
    "ReduceTaskResult",
    "group_bucket",
    "partition_map_output",
    "shuffle",
    "sort_bucket",
    "KeyValue",
    "Partition",
    "ReduceGroup",
    "make_partitions",
    "shard_bounds",
]
