"""Calibrated cost model translating task workloads into task durations.

The paper measures wall-clock times on EC2 High-CPU Medium instances
running Hadoop 0.20.2.  We cannot re-run that testbed, so execution-time
figures are reproduced on a simulated cluster whose per-task costs come
from this model.  Constants are calibrated against two anchors the paper
reports explicitly:

* the BDM job on DS1 (m=20, n=10) takes ≈ 35 s (Section VI-B), which
  pins the fixed job/task overheads, and
* Figure 9's ≈ 18 ms per 10⁴ pairs for the balanced strategies at r=100
  on 10 nodes (≈ 20 reduce slots), which pins the per-comparison cost
  at roughly 30 µs — a plausible figure for edit distance over ~25-40
  character titles on 2010-era virtual cores.

Only *relative* behaviour (orderings, ratios, crossover points) is
claimed to carry over; EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True, slots=True)
class CostModel:
    """Per-task cost constants, all in (simulated) seconds.

    Attributes
    ----------
    job_setup_time:
        Fixed per-job overhead (job submission, task scheduling ramp-up).
    map_task_startup / reduce_task_startup:
        Fixed per-task overhead (JVM spawn, split open, commit).
    map_cost_per_record:
        Cost to read one input record and run the map function on it.
    map_cost_per_output_kv:
        Cost to serialize/spill one map output record.
    shuffle_cost_per_kv:
        Cost per shuffled record attributed to the receiving reduce
        task (copy + merge-sort share).
    reduce_cost_per_input_kv:
        Cost to deserialize/group one reduce input record.
    comparison_cost:
        Cost of one pair comparison at the *reference* title length
        (edit distance is quadratic in string length; see
        ``comparison_cost_for_length``).
    reference_comparison_length:
        Title length at which ``comparison_cost`` was calibrated.
    """

    job_setup_time: float = 18.0
    map_task_startup: float = 2.5
    reduce_task_startup: float = 2.5
    map_cost_per_record: float = 40e-6
    map_cost_per_output_kv: float = 12e-6
    shuffle_cost_per_kv: float = 15e-6
    reduce_cost_per_input_kv: float = 10e-6
    comparison_cost: float = 30e-6
    reference_comparison_length: float = 30.0

    def __post_init__(self) -> None:
        for name in (
            "job_setup_time",
            "map_task_startup",
            "reduce_task_startup",
            "map_cost_per_record",
            "map_cost_per_output_kv",
            "shuffle_cost_per_kv",
            "reduce_cost_per_input_kv",
            "comparison_cost",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.reference_comparison_length <= 0:
            raise ValueError("reference_comparison_length must be positive")

    # -- task costs ----------------------------------------------------------

    def map_task_cost(self, input_records: int, output_kv: int) -> float:
        """Duration of one map task given its record counts."""
        return (
            self.map_task_startup
            + input_records * self.map_cost_per_record
            + output_kv * self.map_cost_per_output_kv
        )

    def reduce_task_cost(
        self,
        input_kv: int,
        comparisons: int,
        *,
        avg_comparison_length: float | None = None,
    ) -> float:
        """Duration of one reduce task.

        ``avg_comparison_length`` models the paper's *computational
        skew*: reduce tasks comparing longer strings are slower even for
        the same pair count (Section VI-B).
        """
        per_comparison = self.comparison_cost_for_length(avg_comparison_length)
        return (
            self.reduce_task_startup
            + input_kv * (self.shuffle_cost_per_kv + self.reduce_cost_per_input_kv)
            + comparisons * per_comparison
        )

    def comparison_cost_for_length(self, avg_length: float | None) -> float:
        """Per-pair cost scaled quadratically with string length.

        Edit distance on two strings of length L costs O(L²); we scale
        the calibrated reference cost accordingly.  ``None`` means "use
        the reference length".
        """
        if avg_length is None:
            return self.comparison_cost
        if avg_length <= 0:
            raise ValueError(f"avg_length must be positive, got {avg_length}")
        ratio = avg_length / self.reference_comparison_length
        return self.comparison_cost * ratio * ratio

    # -- convenience -----------------------------------------------------------

    def scaled(self, factor: float) -> "CostModel":
        """A model with every variable cost multiplied by ``factor``.

        Fixed overheads are preserved; useful for what-if analyses
        (faster cores, slower comparisons).
        """
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        return replace(
            self,
            map_cost_per_record=self.map_cost_per_record * factor,
            map_cost_per_output_kv=self.map_cost_per_output_kv * factor,
            shuffle_cost_per_kv=self.shuffle_cost_per_kv * factor,
            reduce_cost_per_input_kv=self.reduce_cost_per_input_kv * factor,
            comparison_cost=self.comparison_cost * factor,
        )


def lognormal_speed_factors(
    num_nodes: int, sigma: float, seed: int = 7
) -> list[float]:
    """Per-node speed multipliers modelling heterogeneous hardware.

    The paper attributes part of the residual imbalance to
    "heterogeneous hardware" on EC2 (Section VI-B).  A lognormal with
    median 1.0 is the standard model for multiplicative speed noise.
    ``sigma=0`` yields a perfectly homogeneous cluster.
    """
    if num_nodes <= 0:
        raise ValueError(f"num_nodes must be positive, got {num_nodes}")
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    if sigma == 0:
        return [1.0] * num_nodes
    # Deterministic xorshift-based normals; avoids importing numpy here
    # and keeps the simulator dependency-free.
    factors = []
    state = (seed * 2654435761 + 1) & 0xFFFFFFFF

    def next_uniform() -> float:
        nonlocal state
        state ^= (state << 13) & 0xFFFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0xFFFFFFFF
        return ((state & 0xFFFFFF) + 0.5) / float(1 << 24)

    for _ in range(num_nodes):
        # Box-Muller transform.
        u1, u2 = next_uniform(), next_uniform()
        z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
        factors.append(math.exp(sigma * z))
    return factors
