"""Event-driven cluster simulator with a calibrated Hadoop-ish cost model.

Substitutes for the paper's 100-node EC2/Hadoop testbed: the strategies
compute real per-task workloads (records shuffled, pairs compared) and
this package converts them into simulated execution times, reproducing
the *shape* of the paper's time/speedup figures.
"""

from .costmodel import CostModel, lognormal_speed_factors
from .simulation import (
    ClusterSimulator,
    ClusterSpec,
    TaskSpec,
    map_task_specs,
    reduce_task_specs,
)
from .timeline import (
    JobTimeline,
    PhaseTimeline,
    TaskExecution,
    WorkflowTimeline,
    makespan_lower_bound,
    speedup_series,
)

__all__ = [
    "CostModel",
    "lognormal_speed_factors",
    "ClusterSimulator",
    "ClusterSpec",
    "TaskSpec",
    "map_task_specs",
    "reduce_task_specs",
    "JobTimeline",
    "PhaseTimeline",
    "TaskExecution",
    "WorkflowTimeline",
    "makespan_lower_bound",
    "speedup_series",
]
