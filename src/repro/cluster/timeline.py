"""Execution timelines produced by the cluster simulator.

A timeline records, for every task, when and where it ran.  The
analysis layer derives the quantities the paper plots from these:
makespan (execution time), speedup over the 1-node configuration and
slot utilisation (the "idle but instantiated nodes produce unnecessary
costs" argument of the introduction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True, slots=True)
class TaskExecution:
    """One task's placement on the simulated cluster."""

    name: str
    node: int
    slot: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"task {self.name!r}: end {self.end} before start {self.start}")


@dataclass(frozen=True, slots=True)
class PhaseTimeline:
    """All task executions of one phase (map or reduce)."""

    phase: str
    start: float
    executions: tuple[TaskExecution, ...]
    num_slots: int

    @property
    def end(self) -> float:
        if not self.executions:
            return self.start
        return max(task.end for task in self.executions)

    @property
    def makespan(self) -> float:
        return self.end - self.start

    @property
    def total_work(self) -> float:
        return sum(task.duration for task in self.executions)

    @property
    def utilisation(self) -> float:
        """Fraction of slot-time spent running tasks (1.0 = perfectly packed)."""
        capacity = self.makespan * self.num_slots
        if capacity == 0:
            return 1.0
        return self.total_work / capacity

    def per_slot_busy_time(self) -> dict[tuple[int, int], float]:
        busy: dict[tuple[int, int], float] = {}
        for task in self.executions:
            key = (task.node, task.slot)
            busy[key] = busy.get(key, 0.0) + task.duration
        return busy

    def critical_task(self) -> TaskExecution | None:
        """The task that finishes last (the straggler)."""
        if not self.executions:
            return None
        return max(self.executions, key=lambda t: t.end)


@dataclass(frozen=True, slots=True)
class JobTimeline:
    """A full job: setup, map phase, reduce phase."""

    job_name: str
    setup_time: float
    map_phase: PhaseTimeline
    reduce_phase: PhaseTimeline

    @property
    def execution_time(self) -> float:
        return self.setup_time + self.map_phase.makespan + self.reduce_phase.makespan

    @property
    def reduce_straggler(self) -> TaskExecution | None:
        return self.reduce_phase.critical_task()


@dataclass(frozen=True, slots=True)
class WorkflowTimeline:
    """A chain of jobs executed back to back (the paper's 2-job workflow)."""

    jobs: tuple[JobTimeline, ...]

    @property
    def execution_time(self) -> float:
        return sum(job.execution_time for job in self.jobs)

    def job(self, name: str) -> JobTimeline:
        for job in self.jobs:
            if job.job_name == name:
                return job
        raise KeyError(f"no job named {name!r} in workflow timeline")


def speedup_series(times: Sequence[float]) -> list[float]:
    """Speedup of each configuration relative to the first one.

    The paper's Figures 13/14 plot speedup against the 1-node run of the
    same strategy.
    """
    if not times:
        return []
    baseline = times[0]
    if baseline <= 0:
        raise ValueError("baseline execution time must be positive")
    return [baseline / t for t in times]


def makespan_lower_bound(costs: Iterable[float], num_slots: int) -> float:
    """Classic scheduling lower bound: max(longest task, total work / slots)."""
    costs = list(costs)
    if not costs:
        return 0.0
    if num_slots <= 0:
        raise ValueError(f"num_slots must be positive, got {num_slots}")
    return max(max(costs), sum(costs) / num_slots)
