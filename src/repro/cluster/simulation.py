"""Event-driven simulation of MR task scheduling on a cluster.

Models the execution environment of the paper's evaluation: ``n`` nodes,
each running a fixed number of map and reduce *processes* (two of each
in the paper's EC2 setup), with tasks assigned to freed processes in
task-index order — Hadoop's FIFO in-job scheduling.  The reduce phase
starts after the map phase completes (we do not model the shuffle
overlap; the paper states the reduce phase dominates at > 95 % of the
runtime, so the simplification does not move any conclusion).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from .costmodel import CostModel, lognormal_speed_factors
from .timeline import JobTimeline, PhaseTimeline, TaskExecution, WorkflowTimeline


@dataclass(frozen=True, slots=True)
class TaskSpec:
    """A schedulable unit of work: a name and a cost in seconds."""

    name: str
    cost: float

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise ValueError(f"task {self.name!r} has negative cost {self.cost}")


@dataclass(frozen=True, slots=True)
class ClusterSpec:
    """Shape of the simulated cluster.

    ``node_speeds`` are optional per-node multiplicative speed factors
    (> 1 means faster); they model heterogeneous hardware.
    """

    num_nodes: int
    map_slots_per_node: int = 2
    reduce_slots_per_node: int = 2
    node_speeds: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {self.num_nodes}")
        if self.map_slots_per_node <= 0 or self.reduce_slots_per_node <= 0:
            raise ValueError("slots per node must be positive")
        if self.node_speeds is not None:
            if len(self.node_speeds) != self.num_nodes:
                raise ValueError(
                    f"expected {self.num_nodes} node speeds, got {len(self.node_speeds)}"
                )
            if any(s <= 0 for s in self.node_speeds):
                raise ValueError("node speeds must be positive")

    def speed(self, node: int) -> float:
        if self.node_speeds is None:
            return 1.0
        return self.node_speeds[node]

    @property
    def total_map_slots(self) -> int:
        return self.num_nodes * self.map_slots_per_node

    @property
    def total_reduce_slots(self) -> int:
        return self.num_nodes * self.reduce_slots_per_node


class ClusterSimulator:
    """Schedules task lists onto a :class:`ClusterSpec` and reports timelines."""

    def __init__(self, cluster: ClusterSpec, cost_model: CostModel | None = None):
        self.cluster = cluster
        self.cost_model = cost_model if cost_model is not None else CostModel()

    # -- phases ---------------------------------------------------------------

    def simulate_phase(
        self,
        phase: str,
        tasks: Sequence[TaskSpec],
        *,
        slots_per_node: int,
        start: float = 0.0,
    ) -> PhaseTimeline:
        """FIFO-schedule ``tasks`` (in list order) onto the phase's slots.

        A freed slot immediately takes the next pending task; ties in
        availability are broken by (node, slot) order, which makes the
        simulation fully deterministic.
        """
        num_slots = self.cluster.num_nodes * slots_per_node
        # Heap of (free_time, node, slot).
        slots = [
            (start, node, slot)
            for node in range(self.cluster.num_nodes)
            for slot in range(slots_per_node)
        ]
        heapq.heapify(slots)
        executions: list[TaskExecution] = []
        for task in tasks:
            free_time, node, slot = heapq.heappop(slots)
            begin = max(free_time, start)
            duration = task.cost / self.cluster.speed(node)
            end = begin + duration
            executions.append(
                TaskExecution(name=task.name, node=node, slot=slot, start=begin, end=end)
            )
            heapq.heappush(slots, (end, node, slot))
        return PhaseTimeline(
            phase=phase, start=start, executions=tuple(executions), num_slots=num_slots
        )

    # -- jobs -------------------------------------------------------------------

    def simulate_job(
        self,
        job_name: str,
        map_tasks: Sequence[TaskSpec],
        reduce_tasks: Sequence[TaskSpec],
        *,
        start: float = 0.0,
    ) -> JobTimeline:
        """Simulate one job: setup, map wave(s), barrier, reduce wave(s)."""
        setup = self.cost_model.job_setup_time
        map_phase = self.simulate_phase(
            "map",
            map_tasks,
            slots_per_node=self.cluster.map_slots_per_node,
            start=start + setup,
        )
        reduce_phase = self.simulate_phase(
            "reduce",
            reduce_tasks,
            slots_per_node=self.cluster.reduce_slots_per_node,
            start=map_phase.end,
        )
        return JobTimeline(
            job_name=job_name,
            setup_time=setup,
            map_phase=map_phase,
            reduce_phase=reduce_phase,
        )

    def simulate_workflow(
        self, jobs: Sequence[tuple[str, Sequence[TaskSpec], Sequence[TaskSpec]]]
    ) -> WorkflowTimeline:
        """Simulate a chain of jobs back to back."""
        timelines: list[JobTimeline] = []
        clock = 0.0
        for job_name, map_tasks, reduce_tasks in jobs:
            timeline = self.simulate_job(job_name, map_tasks, reduce_tasks, start=clock)
            timelines.append(timeline)
            clock += timeline.execution_time
        return WorkflowTimeline(jobs=tuple(timelines))


def map_task_specs(
    cost_model: CostModel,
    records_per_task: Sequence[int],
    output_kv_per_task: Sequence[int],
    *,
    prefix: str = "map",
) -> list[TaskSpec]:
    """Build map task specs from per-task record counts."""
    if len(records_per_task) != len(output_kv_per_task):
        raise ValueError("records and output-kv lists must have equal length")
    return [
        TaskSpec(
            name=f"{prefix}-{i}",
            cost=cost_model.map_task_cost(records, out_kv),
        )
        for i, (records, out_kv) in enumerate(zip(records_per_task, output_kv_per_task))
    ]


def reduce_task_specs(
    cost_model: CostModel,
    input_kv_per_task: Sequence[int],
    comparisons_per_task: Sequence[int],
    *,
    avg_comparison_length: float | None = None,
    comparison_noise_sigma: float = 0.0,
    noise_seed: int = 11,
    prefix: str = "reduce",
) -> list[TaskSpec]:
    """Build reduce task specs from per-task shuffle and comparison counts.

    ``comparison_noise_sigma`` models the paper's *computational skew*
    (Section VI-B): reduce tasks comparing different blocks see
    different attribute-value lengths, so their per-pair cost varies.
    Each task's comparison cost is multiplied by a deterministic
    lognormal factor (median 1); with many tasks per slot the noise
    averages out, which is exactly why the paper's balanced strategies
    *gain* from a larger r on a fixed cluster (Figure 10).
    """
    if len(input_kv_per_task) != len(comparisons_per_task):
        raise ValueError("input-kv and comparison lists must have equal length")
    if comparison_noise_sigma < 0:
        raise ValueError("comparison_noise_sigma must be non-negative")
    num_tasks = len(input_kv_per_task)
    if comparison_noise_sigma > 0 and num_tasks > 0:
        factors = lognormal_speed_factors(
            num_tasks, comparison_noise_sigma, seed=noise_seed
        )
    else:
        factors = [1.0] * num_tasks
    per_comparison = cost_model.comparison_cost_for_length(avg_comparison_length)
    specs = []
    for i, (input_kv, comps) in enumerate(
        zip(input_kv_per_task, comparisons_per_task)
    ):
        base = cost_model.reduce_task_cost(input_kv, 0)
        specs.append(
            TaskSpec(
                name=f"{prefix}-{i}",
                cost=base + comps * per_comparison * factors[i],
            )
        )
    return specs
