"""Experiment harness: parameter sweeps behind the paper's figures.

Each sweep builds BDMs analytically from block-size distributions (or
real entity lists), runs the strategy planners, simulates the cluster,
and returns tidy result records the benchmarks print.  The sweeps
mirror the paper's three experiment axes: data skew (VI-A), number of
reduce tasks (VI-B), and number of nodes (VI-C).

Sweeps also run from *persisted* pipeline results: a
:meth:`~repro.engine.PipelineResult.save`\\ d run carries its BDM, so
:func:`sweep_from_result` replans any strategy × reduce-task grid from
the file — no re-execution, no access to the original input data.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from ..cluster.costmodel import CostModel
from ..cluster.simulation import ClusterSpec
from ..core.bdm import BlockDistributionMatrix
from ..core.planning import StrategyPlan
from ..core.bdm import analytic_bdm_from_block_sizes
from ..core.two_source import DualSourceBDM
from ..engine.result import PipelineResult
from ..engine.simulate import simulate_strategy
from ..datasets.partitioning import distribute_block_sizes
from ..datasets.skew import exponential_block_sizes, pair_count
from .metrics import WorkloadStats, time_per_pairs


@dataclass(frozen=True, slots=True)
class SimulatedRun:
    """One (strategy, configuration) point of a sweep."""

    strategy: str
    num_nodes: int
    num_map_tasks: int
    num_reduce_tasks: int
    execution_time: float
    total_pairs: int
    map_output_kv: int
    reduce_stats: WorkloadStats
    plan: StrategyPlan

    @property
    def ms_per_10k_pairs(self) -> float:
        """Figure 9's y-axis: milliseconds per 10⁴ pairs."""
        return time_per_pairs(self.execution_time, self.total_pairs) * 1000.0


def simulate_run(
    strategy_name: str,
    bdm: BlockDistributionMatrix,
    *,
    num_nodes: int,
    num_reduce_tasks: int,
    cost_model: CostModel | None = None,
    avg_comparison_length: float | None = None,
    comparison_noise_sigma: float = 0.0,
    node_speeds: Sequence[float] | None = None,
) -> SimulatedRun:
    """Plan + simulate one strategy on one configuration."""
    cluster = ClusterSpec(
        num_nodes=num_nodes,
        node_speeds=tuple(node_speeds) if node_speeds is not None else None,
    )
    timeline, plan = simulate_strategy(
        strategy_name,
        bdm,
        cluster,
        num_reduce_tasks=num_reduce_tasks,
        cost_model=cost_model,
        avg_comparison_length=avg_comparison_length,
        comparison_noise_sigma=comparison_noise_sigma,
    )
    return SimulatedRun(
        strategy=strategy_name,
        num_nodes=num_nodes,
        num_map_tasks=bdm.num_partitions,
        num_reduce_tasks=num_reduce_tasks,
        execution_time=timeline.execution_time,
        total_pairs=plan.total_pairs,
        map_output_kv=plan.total_map_output_kv,
        reduce_stats=WorkloadStats.from_workloads(plan.reduce_comparisons),
        plan=plan,
    )


def bdm_for_block_sizes(
    block_sizes: Sequence[int],
    num_map_tasks: int,
    *,
    order: str = "shuffled",
    seed: int = 13,
) -> BlockDistributionMatrix:
    """Distribute a block-size distribution over ``m`` partitions and
    wrap it as a BDM (the planner-scale input path)."""
    matrix = distribute_block_sizes(
        block_sizes, num_map_tasks, order=order, seed=seed
    )
    # Blocks may end up empty after apportioning zero sizes; drop them.
    keys = [f"b{k}" for k, row in enumerate(matrix) if sum(row) > 0]
    rows = [row for row in matrix if sum(row) > 0]
    return BlockDistributionMatrix(keys, rows)


def bdm_from_result(
    result: "PipelineResult | str | Path",
) -> BlockDistributionMatrix:
    """The one-source BDM of a pipeline result (or persisted result file).

    This is the bridge from execution to analysis-at-rest: every
    BDM-based run persists its block distribution matrix, which is all
    the planners need — so sweeps replay from the file alone.

    Incremental (delta) results work too, for *every* strategy: a
    delta run always persists the merged matrix — persisted corpus
    columns plus the delta's — so the BDM returned here covers the
    whole corpus as of that ingest, not just the delta batch.  (A
    ``basic`` *full* run is the one result kind that carries no BDM.)
    """
    if not isinstance(result, PipelineResult):
        result = PipelineResult.load(result)
    bdm = result.bdm
    if bdm is None:
        raise ValueError(
            f"result (strategy {result.strategy!r}) carries no BDM — "
            "only BDM-based runs (blocksplit/pairrange) can seed sweeps"
        )
    if isinstance(bdm, DualSourceBDM):
        raise ValueError(
            "two-source results cannot seed the one-source sweep planners"
        )
    return bdm


def sweep_from_result(
    strategies: Sequence[str],
    reduce_task_counts: Sequence[int],
    result: "PipelineResult | str | Path",
    *,
    num_nodes: int = 10,
    cost_model: CostModel | None = None,
    avg_comparison_length: float | None = None,
    comparison_noise_sigma: float = 0.0,
) -> dict[int, dict[str, SimulatedRun]]:
    """Replan a reduce-task sweep from a finished (or persisted) run.

    Accepts a :class:`~repro.engine.PipelineResult` or a path to one
    saved with ``result.save(path)``; the sweep uses only the
    persisted BDM, so nothing is re-executed and the original input
    data is not needed.  Incremental (delta) results replan the whole
    corpus as of that ingest — their merged BDM spans old and new
    records alike (see :func:`bdm_from_result`).
    """
    return sweep_reduce_tasks(
        strategies,
        reduce_task_counts,
        bdm_from_result(result),
        num_nodes=num_nodes,
        cost_model=cost_model,
        avg_comparison_length=avg_comparison_length,
        comparison_noise_sigma=comparison_noise_sigma,
    )


# ---------------------------------------------------------------------------
# Sweeps
# ---------------------------------------------------------------------------


def sweep_skew(
    strategies: Sequence[str],
    skews: Sequence[float],
    *,
    num_entities: int,
    num_blocks: int = 100,
    num_nodes: int = 10,
    num_map_tasks: int = 20,
    num_reduce_tasks: int = 100,
    cost_model: CostModel | None = None,
    comparison_noise_sigma: float = 0.0,
    seed: int = 13,
) -> dict[float, dict[str, SimulatedRun]]:
    """Figure 9: robustness against exponential data skew."""
    results: dict[float, dict[str, SimulatedRun]] = {}
    for skew in skews:
        sizes = exponential_block_sizes(num_entities, num_blocks, skew)
        bdm = bdm_for_block_sizes(sizes, num_map_tasks, seed=seed)
        results[skew] = {
            name: simulate_run(
                name,
                bdm,
                num_nodes=num_nodes,
                num_reduce_tasks=num_reduce_tasks,
                cost_model=cost_model,
                comparison_noise_sigma=comparison_noise_sigma,
            )
            for name in strategies
        }
    return results


def sweep_reduce_tasks(
    strategies: Sequence[str],
    reduce_task_counts: Sequence[int],
    bdm: BlockDistributionMatrix,
    *,
    num_nodes: int = 10,
    cost_model: CostModel | None = None,
    avg_comparison_length: float | None = None,
    comparison_noise_sigma: float = 0.0,
) -> dict[int, dict[str, SimulatedRun]]:
    """Figures 10 and 12: vary r on a fixed cluster and dataset."""
    results: dict[int, dict[str, SimulatedRun]] = {}
    for r in reduce_task_counts:
        results[r] = {
            name: simulate_run(
                name,
                bdm,
                num_nodes=num_nodes,
                num_reduce_tasks=r,
                cost_model=cost_model,
                avg_comparison_length=avg_comparison_length,
                comparison_noise_sigma=comparison_noise_sigma,
            )
            for name in strategies
        }
    return results


def sweep_nodes(
    strategies: Sequence[str],
    node_counts: Sequence[int],
    block_sizes: Sequence[int],
    *,
    map_tasks_per_node: int = 2,
    reduce_tasks_per_node: int = 10,
    order: str = "shuffled",
    cost_model: CostModel | None = None,
    avg_comparison_length: float | None = None,
    comparison_noise_sigma: float = 0.0,
    seed: int = 13,
) -> dict[int, dict[str, SimulatedRun]]:
    """Figures 13/14: scale nodes with m = 2n and r = 10n.

    The BDM is rebuilt per node count because the number of input
    partitions (m) changes with n.
    """
    results: dict[int, dict[str, SimulatedRun]] = {}
    for n in node_counts:
        m = map_tasks_per_node * n
        r = reduce_tasks_per_node * n
        bdm = bdm_for_block_sizes(block_sizes, m, order=order, seed=seed)
        results[n] = {
            name: simulate_run(
                name,
                bdm,
                num_nodes=n,
                num_reduce_tasks=r,
                cost_model=cost_model,
                avg_comparison_length=avg_comparison_length,
                comparison_noise_sigma=comparison_noise_sigma,
            )
            for name in strategies
        }
    return results


def sweep_input_order(
    strategies: Sequence[str],
    orders: Sequence[str],
    block_sizes: Sequence[int],
    *,
    num_map_tasks: int = 20,
    num_nodes: int = 10,
    reduce_task_counts: Sequence[int] = (20, 40, 60, 80, 100, 120, 140, 160),
    cost_model: CostModel | None = None,
    comparison_noise_sigma: float = 0.0,
    seed: int = 13,
) -> dict[str, dict[int, dict[str, SimulatedRun]]]:
    """Figure 11: unsorted vs. sorted (by blocking key) input data."""
    results: dict[str, dict[int, dict[str, SimulatedRun]]] = {}
    for order in orders:
        bdm = bdm_for_block_sizes(
            block_sizes, num_map_tasks, order=order, seed=seed
        )
        results[order] = sweep_reduce_tasks(
            strategies,
            reduce_task_counts,
            bdm,
            num_nodes=num_nodes,
            cost_model=cost_model,
            comparison_noise_sigma=comparison_noise_sigma,
        )
    return results


def dataset_statistics(block_sizes: Sequence[int]) -> dict[str, float]:
    """The Figure 8 row for one dataset."""
    from ..datasets.skew import largest_block_share

    entity_share, pair_share = largest_block_share(block_sizes)
    return {
        "entities": float(sum(block_sizes)),
        "blocks": float(len(block_sizes)),
        "pairs": float(pair_count(block_sizes)),
        "largest_block_entity_share": entity_share,
        "largest_block_pair_share": pair_share,
    }
