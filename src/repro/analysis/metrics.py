"""Load-balance and scalability metrics.

Quantifies what the paper's figures show: how evenly comparison work is
spread over reduce tasks, how much data each strategy replicates, and
how execution time scales with nodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True, slots=True)
class WorkloadStats:
    """Distribution statistics of per-reduce-task workloads."""

    total: int
    mean: float
    maximum: int
    minimum: int
    stdev: float
    imbalance: float
    coefficient_of_variation: float

    @classmethod
    def from_workloads(cls, workloads: Sequence[int]) -> "WorkloadStats":
        if not workloads:
            raise ValueError("workloads must be non-empty")
        if any(w < 0 for w in workloads):
            raise ValueError("workloads must be non-negative")
        total = sum(workloads)
        n = len(workloads)
        mean = total / n
        maximum = max(workloads)
        minimum = min(workloads)
        variance = sum((w - mean) ** 2 for w in workloads) / n
        stdev = math.sqrt(variance)
        imbalance = maximum / mean if mean > 0 else (0.0 if maximum == 0 else math.inf)
        cv = stdev / mean if mean > 0 else 0.0
        return cls(
            total=total,
            mean=mean,
            maximum=maximum,
            minimum=minimum,
            stdev=stdev,
            imbalance=imbalance,
            coefficient_of_variation=cv,
        )


def imbalance(workloads: Sequence[int]) -> float:
    """max / mean — 1.0 is a perfect balance; Basic on skewed data is ≫ 1."""
    return WorkloadStats.from_workloads(workloads).imbalance


def replication_factor(map_output_kv: int, input_entities: int) -> float:
    """Emitted KV pairs per input entity (Figure 12's y-axis, normalised)."""
    if input_entities <= 0:
        raise ValueError("input_entities must be positive")
    return map_output_kv / input_entities


def speedup(times: Sequence[float], baseline: float | None = None) -> list[float]:
    """Speedup series relative to ``baseline`` (default: first entry)."""
    if not times:
        return []
    if any(t <= 0 for t in times):
        raise ValueError("execution times must be positive")
    reference = baseline if baseline is not None else times[0]
    if reference <= 0:
        raise ValueError("baseline must be positive")
    return [reference / t for t in times]


def efficiency(speedups: Sequence[float], nodes: Sequence[int]) -> list[float]:
    """Parallel efficiency: speedup / node-ratio (1.0 = linear scaling)."""
    if len(speedups) != len(nodes):
        raise ValueError("speedups and nodes must have equal length")
    if not nodes:
        return []
    base_nodes = nodes[0]
    return [s / (n / base_nodes) for s, n in zip(speedups, nodes)]


def time_per_pairs(execution_time: float, total_pairs: int, unit: int = 10_000) -> float:
    """Execution time per ``unit`` pairs — Figure 9's y-axis
    (milliseconds per 10⁴ pairs when ``execution_time`` is in seconds
    and the caller multiplies by 1000)."""
    if total_pairs <= 0:
        raise ValueError("total_pairs must be positive")
    return execution_time * unit / total_pairs
