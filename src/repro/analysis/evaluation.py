"""Match-quality evaluation against a gold standard.

Standard ER quality metrics — precision, recall, F-measure — plus
pair-set breakdowns, computed from canonical id-pair sets as produced
by :class:`~repro.er.matching.MatchResult` and
:func:`~repro.datasets.corruption.corrupt_dataset`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

PairSet = frozenset


def _canonical(pairs: Iterable[tuple[str, str]]) -> frozenset[tuple[str, str]]:
    return frozenset(tuple(sorted(p)) for p in pairs)


@dataclass(frozen=True, slots=True)
class MatchQuality:
    """Precision / recall / F1 of a match result against gold pairs."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if p + r else 0.0

    def f_beta(self, beta: float) -> float:
        """Weighted F-measure; beta > 1 favours recall."""
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        p, r = self.precision, self.recall
        if p == 0 and r == 0:
            return 0.0
        b2 = beta * beta
        return (1 + b2) * p * r / (b2 * p + r)

    def as_dict(self) -> dict[str, float]:
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "true_positives": float(self.true_positives),
            "false_positives": float(self.false_positives),
            "false_negatives": float(self.false_negatives),
        }


def evaluate_matches(
    found: Iterable[tuple[str, str]],
    gold: Iterable[tuple[str, str]],
) -> MatchQuality:
    """Compare a found pair set against the gold standard."""
    found_set = _canonical(found)
    gold_set = _canonical(gold)
    tp = len(found_set & gold_set)
    return MatchQuality(
        true_positives=tp,
        false_positives=len(found_set) - tp,
        false_negatives=len(gold_set) - tp,
    )


def pairs_completeness(
    candidates: Iterable[tuple[str, str]], gold: Iterable[tuple[str, str]]
) -> float:
    """Blocking quality: fraction of gold pairs the blocking retains.

    The ceiling on recall any matcher can reach after blocking — low
    values mean the blocking key, not the matcher, loses matches.
    """
    gold_set = _canonical(gold)
    if not gold_set:
        return 1.0
    candidate_set = _canonical(candidates)
    return len(gold_set & candidate_set) / len(gold_set)


def reduction_ratio(num_candidates: int, num_entities: int) -> float:
    """Blocking efficiency: 1 − candidates / all-pairs."""
    if num_entities < 0 or num_candidates < 0:
        raise ValueError("counts must be non-negative")
    total = num_entities * (num_entities - 1) // 2
    if total == 0:
        return 1.0
    return 1.0 - num_candidates / total
