"""Plain-text visualisation of workloads and timelines.

Terminal-friendly renderings used by the examples and handy when
debugging balance issues: horizontal bar charts for per-task workloads
and a Gantt-style view of simulated cluster timelines.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..cluster.timeline import PhaseTimeline


def bar_chart(
    values: Sequence[float],
    *,
    labels: Sequence[str] | None = None,
    width: int = 50,
    title: str | None = None,
) -> str:
    """Horizontal bar chart scaled to the maximum value."""
    if not values:
        raise ValueError("values must be non-empty")
    if any(v < 0 for v in values):
        raise ValueError("values must be non-negative")
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if labels is not None and len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    labels = list(labels) if labels is not None else [str(i) for i in range(len(values))]
    label_width = max(len(label) for label in labels)
    peak = max(values)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        filled = 0 if peak == 0 else round(value / peak * width)
        bar = "█" * filled
        lines.append(f"{label.rjust(label_width)} |{bar.ljust(width)}| {value:g}")
    return "\n".join(lines)


def workload_chart(
    workloads_by_strategy: Mapping[str, Sequence[int]], *, width: int = 40
) -> str:
    """Side-by-side reduce-workload charts for several strategies."""
    sections = []
    for name, workloads in workloads_by_strategy.items():
        sections.append(
            bar_chart(
                list(workloads),
                labels=[f"r{i}" for i in range(len(workloads))],
                width=width,
                title=f"{name} — comparisons per reduce task",
            )
        )
    return "\n\n".join(sections)


def gantt(
    phase: PhaseTimeline,
    *,
    width: int = 72,
    max_rows: int = 40,
) -> str:
    """Gantt-style rendering of one simulated phase.

    One row per (node, slot); each task is drawn as a run of its
    index-derived glyph.  Rows beyond ``max_rows`` are elided.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if not phase.executions:
        return f"{phase.phase}: (no tasks)"
    start = phase.start
    span = max(phase.end - start, 1e-12)
    rows: dict[tuple[int, int], list[str]] = {}
    glyphs = "0123456789abcdefghijklmnopqrstuvwxyz"
    for index, task in enumerate(sorted(phase.executions, key=lambda t: t.start)):
        key = (task.node, task.slot)
        row = rows.setdefault(key, [" "] * width)
        lo = int((task.start - start) / span * width)
        hi = max(lo + 1, int((task.end - start) / span * width))
        glyph = glyphs[index % len(glyphs)]
        for i in range(lo, min(hi, width)):
            row[i] = glyph
    lines = [
        f"{phase.phase} phase — makespan {phase.makespan:.1f}s, "
        f"utilisation {phase.utilisation:.0%}"
    ]
    for key in sorted(rows)[:max_rows]:
        node, slot = key
        lines.append(f"n{node:02d}.s{slot} |{''.join(rows[key])}|")
    hidden = len(rows) - max_rows
    if hidden > 0:
        lines.append(f"... {hidden} more slots")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """Compact one-line trend, e.g. for time-vs-r series."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    if hi == lo:
        return blocks[0] * len(values)
    return "".join(
        blocks[int((v - lo) / (hi - lo) * (len(blocks) - 1))] for v in values
    )
