"""Analysis layer: metrics, experiment sweeps, and report formatting."""

from .experiments import (
    SimulatedRun,
    bdm_for_block_sizes,
    bdm_from_result,
    dataset_statistics,
    simulate_run,
    sweep_from_result,
    sweep_input_order,
    sweep_nodes,
    sweep_reduce_tasks,
    sweep_skew,
)
from .evaluation import (
    MatchQuality,
    evaluate_matches,
    pairs_completeness,
    reduction_ratio,
)
from .metrics import (
    WorkloadStats,
    efficiency,
    imbalance,
    replication_factor,
    speedup,
    time_per_pairs,
)
from .reporting import format_seconds, format_series, format_table
from .visualization import bar_chart, gantt, sparkline, workload_chart

__all__ = [
    "SimulatedRun",
    "bdm_for_block_sizes",
    "bdm_from_result",
    "dataset_statistics",
    "simulate_run",
    "sweep_from_result",
    "sweep_input_order",
    "sweep_nodes",
    "sweep_reduce_tasks",
    "sweep_skew",
    "MatchQuality",
    "evaluate_matches",
    "pairs_completeness",
    "reduction_ratio",
    "WorkloadStats",
    "efficiency",
    "imbalance",
    "replication_factor",
    "speedup",
    "time_per_pairs",
    "format_seconds",
    "format_series",
    "format_table",
    "bar_chart",
    "gantt",
    "sparkline",
    "workload_chart",
]
