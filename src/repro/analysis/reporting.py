"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output consistent and readable.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
) -> str:
    """A fixed-width text table (right-aligned numbers, left-aligned text)."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for original, row in zip(rows, rendered_rows):
        cells = []
        for i, cell in enumerate(row):
            if isinstance(original[i], (int, float)) and not isinstance(original[i], bool):
                cells.append(cell.rjust(widths[i]))
            else:
                cells.append(cell.ljust(widths[i]))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:,.2f}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_series(
    x_label: str,
    x_values: Sequence[Any],
    series: dict[str, Sequence[Any]],
    *,
    title: str | None = None,
) -> str:
    """Render several y-series against one x-axis — one figure's data."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(x_values):
        row: list[Any] = [x]
        for values in series.values():
            row.append(values[i] if i < len(values) else "")
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_seconds(seconds: float) -> str:
    """Human-readable duration: ``95 s`` / ``12 min 5 s`` / ``1.2 h``."""
    if seconds < 0:
        raise ValueError("seconds must be non-negative")
    if seconds < 120:
        return f"{seconds:.0f} s"
    if seconds < 3600:
        minutes, rest = divmod(seconds, 60)
        return f"{int(minutes)} min {rest:.0f} s"
    return f"{seconds / 3600:.2f} h"
